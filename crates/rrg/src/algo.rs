//! Structural graph algorithms used across the workspace: strongly
//! connected components, token-weighted cycle detection (liveness), and
//! topological ordering of the combinational (bufferless) subgraph.

use crate::rrg::{EdgeId, NodeId, Rrg};

/// Strongly connected components by Tarjan's algorithm (iterative, so deep
/// graphs cannot overflow the stack). Components are returned in reverse
/// topological order.
pub fn sccs(g: &Rrg) -> Vec<Vec<NodeId>> {
    let n = g.num_nodes();
    #[derive(Clone, Copy)]
    struct Frame {
        node: usize,
        edge_pos: usize,
    }
    let mut index = vec![usize::MAX; n];
    let mut lowlink = vec![usize::MAX; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut comps: Vec<Vec<NodeId>> = Vec::new();

    for root in 0..n {
        if index[root] != usize::MAX {
            continue;
        }
        let mut call: Vec<Frame> = vec![Frame {
            node: root,
            edge_pos: 0,
        }];
        index[root] = next_index;
        lowlink[root] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root] = true;

        while let Some(frame) = call.last_mut() {
            let v = frame.node;
            if frame.edge_pos < g.succ[v].len() {
                let e = g.succ[v][frame.edge_pos];
                frame.edge_pos += 1;
                let w = g.edges[e.0].target.0;
                if index[w] == usize::MAX {
                    index[w] = next_index;
                    lowlink[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    call.push(Frame {
                        node: w,
                        edge_pos: 0,
                    });
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index[w]);
                }
            } else {
                call.pop();
                if let Some(parent) = call.last() {
                    lowlink[parent.node] = lowlink[parent.node].min(lowlink[v]);
                }
                if lowlink[v] == index[v] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        comp.push(NodeId(w));
                        if w == v {
                            break;
                        }
                    }
                    comps.push(comp);
                }
            }
        }
    }
    comps
}

/// `true` if the graph is strongly connected (and non-empty).
pub fn is_strongly_connected(g: &Rrg) -> bool {
    g.num_nodes() > 0 && sccs(g).len() == 1
}

/// Extracts the subgraph induced by the largest SCC (most nodes; ties
/// broken by most edges). Returns the subgraph plus the mapping from new
/// node ids to original ids. Edges with both endpoints inside the SCC are
/// kept.
pub fn largest_scc(g: &Rrg) -> (Rrg, Vec<NodeId>) {
    let comps = sccs(g);
    let mut best: Option<&Vec<NodeId>> = None;
    for c in &comps {
        let better = match best {
            None => true,
            Some(b) => c.len() > b.len(),
        };
        if better {
            best = Some(c);
        }
    }
    let keep = best.cloned().unwrap_or_default();
    let mut in_comp = vec![usize::MAX; g.num_nodes()];
    for (new, old) in keep.iter().enumerate() {
        in_comp[old.0] = new;
    }
    let mut sub = Rrg {
        nodes: keep.iter().map(|&n| g.nodes[n.0].clone()).collect(),
        edges: Vec::new(),
        succ: Vec::new(),
        pred: Vec::new(),
    };
    for e in &g.edges {
        let (s, t) = (in_comp[e.source.0], in_comp[e.target.0]);
        if s != usize::MAX && t != usize::MAX {
            let mut e = e.clone();
            e.source = NodeId(s);
            e.target = NodeId(t);
            sub.edges.push(e);
        }
    }
    sub.rebuild_adjacency();
    (sub, keep)
}

/// Finds a directed cycle whose total token count (`Σ R0`) is ≤ 0, if one
/// exists. Such a cycle violates the liveness condition of Definition 2.1.
///
/// Implementation: a cycle has `Σ R0 ≤ 0` iff it is negative under the
/// scaled integer weights `w(e) = (|E|+1)·R0(e) − 1`, detected with
/// Bellman–Ford from a virtual source. The offending cycle is recovered by
/// walking the predecessor chain.
pub fn find_dead_cycle(g: &Rrg) -> Option<Vec<EdgeId>> {
    find_nonpositive_cycle_with(g, |e| g.edges[e.0].tokens)
}

/// Finds a cycle with **strictly negative** weight sum, if any.
///
/// Built on [`find_nonpositive_cycle_with`] via the transformation
/// `u(e) = (|E|+1)·w(e) + 1`: a cycle of length `ℓ ≤ |E|` has
/// `Σu = (|E|+1)·Σw + ℓ`, which is ≤ 0 exactly when `Σw ≤ −1`.
pub fn find_negative_cycle_with(g: &Rrg, weight: impl Fn(EdgeId) -> i64) -> Option<Vec<EdgeId>> {
    let scale = g.num_edges() as i64 + 1;
    find_nonpositive_cycle_with(g, |e| scale * weight(e) + 1)
}

/// Generalisation of [`find_dead_cycle`] to arbitrary per-edge integer
/// weights: finds a cycle with `Σ weight ≤ 0`, if any.
pub fn find_nonpositive_cycle_with(g: &Rrg, weight: impl Fn(EdgeId) -> i64) -> Option<Vec<EdgeId>> {
    let n = g.num_nodes();
    if n == 0 {
        return None;
    }
    let scale = g.num_edges() as i64 + 1;
    let w = |e: EdgeId| scale * weight(e) - 1;

    // Bellman–Ford with all distances initialised to 0 (virtual source).
    let mut dist = vec![0i64; n];
    let mut pred_edge: Vec<Option<EdgeId>> = vec![None; n];
    let mut changed_node = None;
    for pass in 0..=n {
        let mut changed = None;
        for (i, e) in g.edges.iter().enumerate() {
            let id = EdgeId(i);
            let cand = dist[e.source.0].saturating_add(w(id));
            if cand < dist[e.target.0] {
                dist[e.target.0] = cand;
                pred_edge[e.target.0] = Some(id);
                changed = Some(e.target);
            }
        }
        changed?; // converged: no nonpositive cycle
        if pass == n {
            changed_node = changed;
        }
    }
    // A node relaxed on pass n lies on or downstream of a negative cycle;
    // walk back n steps to land inside the cycle, then extract it.
    let mut v = changed_node.expect("relaxation continued on the last pass");
    for _ in 0..n {
        let e = pred_edge[v.0].expect("predecessor chain broken");
        v = g.edges[e.0].source;
    }
    let start = v;
    let mut cycle = Vec::new();
    loop {
        let e = pred_edge[v.0].expect("predecessor chain broken inside cycle");
        cycle.push(e);
        v = g.edges[e.0].source;
        if v == start {
            break;
        }
    }
    cycle.reverse();
    Some(cycle)
}

/// Enumerates directed simple cycles as DFS back-edge ("fundamental")
/// cycles: every edge closing back onto the active DFS path yields the
/// tree path plus the closing edge. At most one cycle per back edge is
/// produced (so at most `|E|` overall, capped at `max_cycles`), cycles
/// never repeat a node, and the traversal order — nodes ascending,
/// successor lists in insertion order — makes the result deterministic.
/// Cross and forward edges are skipped, so this is a cheap structural
/// sample of the cycle space, not an exhaustive enumeration (which is
/// exponential); the MILP layer uses it to derive cycle-sum cuts.
pub fn fundamental_cycles(g: &Rrg, max_cycles: usize) -> Vec<Vec<EdgeId>> {
    let n = g.num_nodes();
    #[derive(Clone, Copy)]
    struct Frame {
        node: usize,
        edge_pos: usize,
    }
    // 0 = unvisited, 1 = on the active DFS path, 2 = finished.
    let mut state = vec![0u8; n];
    let mut pos_in_path = vec![usize::MAX; n];
    let mut cycles: Vec<Vec<EdgeId>> = Vec::new();
    for root in 0..n {
        if state[root] != 0 || cycles.len() >= max_cycles {
            continue;
        }
        let mut call = vec![Frame {
            node: root,
            edge_pos: 0,
        }];
        // `path_edges[i]` is the tree edge into `call[i + 1]`.
        let mut path_edges: Vec<EdgeId> = Vec::new();
        state[root] = 1;
        pos_in_path[root] = 0;
        while let Some(frame) = call.last_mut() {
            let v = frame.node;
            if frame.edge_pos < g.succ[v].len() {
                let e = g.succ[v][frame.edge_pos];
                frame.edge_pos += 1;
                let w = g.edges[e.0].target.0;
                match state[w] {
                    0 => {
                        state[w] = 1;
                        pos_in_path[w] = call.len();
                        call.push(Frame {
                            node: w,
                            edge_pos: 0,
                        });
                        path_edges.push(e);
                    }
                    1 if cycles.len() < max_cycles => {
                        let mut cyc: Vec<EdgeId> = path_edges[pos_in_path[w]..].to_vec();
                        cyc.push(e);
                        cycles.push(cyc);
                    }
                    _ => {}
                }
            } else {
                state[v] = 2;
                pos_in_path[v] = usize::MAX;
                call.pop();
                if !call.is_empty() {
                    path_edges.pop();
                }
            }
        }
    }
    cycles
}

/// Topological order of the nodes w.r.t. the *combinational* subgraph (the
/// edges with `buffers(e) == 0` under the supplied buffer assignment).
///
/// Returns `Err(edge)` with some edge on a combinational cycle when the
/// subgraph is cyclic (such an RRG has unbounded cycle time).
pub fn combinational_topo_order(g: &Rrg, buffers: &[i64]) -> Result<Vec<NodeId>, EdgeId> {
    let n = g.num_nodes();
    let mut indeg = vec![0usize; n];
    for (i, e) in g.edges.iter().enumerate() {
        if buffers[i] == 0 {
            indeg[e.target.0] += 1;
        }
    }
    let mut queue: Vec<usize> = (0..n).filter(|&v| indeg[v] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(v) = queue.pop() {
        order.push(NodeId(v));
        for &e in &g.succ[v] {
            if buffers[e.0] == 0 {
                let t = g.edges[e.0].target.0;
                indeg[t] -= 1;
                if indeg[t] == 0 {
                    queue.push(t);
                }
            }
        }
    }
    if order.len() == n {
        Ok(order)
    } else {
        // Some node kept positive in-degree: find an offending edge.
        // Prefer an edge *between* two blocked nodes (it lies on the
        // cycle itself); fall back to any combinational edge into a
        // blocked node, which provably exists — a blocked node's
        // in-degree counts exactly those edges — so this stays total
        // instead of panicking on an unexpected degree state.
        let between = g
            .edges
            .iter()
            .enumerate()
            .find(|(i, e)| buffers[*i] == 0 && indeg[e.target.0] > 0 && indeg[e.source.0] > 0);
        let bad = between
            .or_else(|| {
                g.edges
                    .iter()
                    .enumerate()
                    .find(|(i, e)| buffers[*i] == 0 && indeg[e.target.0] > 0)
            })
            .map(|(i, _)| EdgeId(i))
            .expect("a node with positive combinational in-degree has an incoming edge");
        Err(bad)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RrgBuilder;

    fn diamond_with_back_edge() -> Rrg {
        // a → b → d, a → c → d, d → a(token)
        let mut b = RrgBuilder::new();
        let a = b.add_simple("a", 1.0);
        let n_b = b.add_simple("b", 1.0);
        let c = b.add_simple("c", 1.0);
        let d = b.add_simple("d", 1.0);
        b.add_edge(a, n_b, 0, 0);
        b.add_edge(a, c, 0, 0);
        b.add_edge(n_b, d, 0, 0);
        b.add_edge(c, d, 0, 0);
        b.add_edge(d, a, 1, 1);
        b.build().unwrap()
    }

    #[test]
    fn scc_of_cycle_is_single() {
        let g = diamond_with_back_edge();
        assert!(is_strongly_connected(&g));
        assert_eq!(sccs(&g).len(), 1);
    }

    #[test]
    fn scc_separates_components() {
        let mut b = RrgBuilder::new();
        let a = b.add_simple("a", 1.0);
        let c = b.add_simple("c", 1.0);
        let d = b.add_simple("d", 1.0);
        b.add_edge(a, c, 1, 1);
        b.add_edge(c, a, 1, 1);
        b.add_edge(c, d, 0, 0); // d is a sink, own component
        let g = b.build().unwrap();
        let comps = sccs(&g);
        assert_eq!(comps.len(), 2);
        let (sub, map) = largest_scc(&g);
        assert_eq!(sub.num_nodes(), 2);
        assert_eq!(sub.num_edges(), 2);
        assert_eq!(map.len(), 2);
    }

    #[test]
    fn dead_cycle_found_and_reported() {
        // Build without the builder validation to plant the dead cycle.
        let mut b = RrgBuilder::new();
        let a = b.add_simple("a", 1.0);
        let c = b.add_simple("c", 1.0);
        b.add_edge(a, c, 1, 1);
        b.add_edge(c, a, -1, 0);
        let err = b.build();
        assert!(err.is_err(), "cycle with sum 0 must be rejected");
    }

    #[test]
    fn live_graph_has_no_dead_cycle() {
        let g = diamond_with_back_edge();
        assert!(find_dead_cycle(&g).is_none());
    }

    #[test]
    fn nonpositive_cycle_weights_are_general() {
        let g = diamond_with_back_edge();
        // Under all-zero weights every cycle is nonpositive.
        let cyc = find_nonpositive_cycle_with(&g, |_| 0).unwrap();
        assert!(!cyc.is_empty());
        // Verify it is an actual cycle: consecutive edges chain up.
        for w in cyc.windows(2) {
            assert_eq!(g.edge(w[0]).target(), g.edge(w[1]).source());
        }
        assert_eq!(
            g.edge(*cyc.last().unwrap()).target(),
            g.edge(cyc[0]).source()
        );
    }

    #[test]
    fn fundamental_cycles_are_simple_closed_and_deterministic() {
        let g = diamond_with_back_edge();
        let cycles = fundamental_cycles(&g, usize::MAX);
        // One back edge (d → a) on the first DFS path: one cycle.
        assert_eq!(cycles.len(), 1);
        for cyc in &cycles {
            // Consecutive edges chain up and the last closes onto the first.
            for w in cyc.windows(2) {
                assert_eq!(g.edge(w[0]).target(), g.edge(w[1]).source());
            }
            assert_eq!(
                g.edge(*cyc.last().unwrap()).target(),
                g.edge(cyc[0]).source()
            );
            // Simple: no node repeats.
            let mut nodes: Vec<usize> = cyc.iter().map(|&e| g.edge(e).source().0).collect();
            nodes.sort_unstable();
            nodes.dedup();
            assert_eq!(nodes.len(), cyc.len());
        }
        assert_eq!(fundamental_cycles(&g, 0).len(), 0);
        // Deterministic: identical call, identical result.
        assert_eq!(cycles, fundamental_cycles(&g, usize::MAX));
    }

    #[test]
    fn topo_order_respects_combinational_edges() {
        let g = diamond_with_back_edge();
        let buffers: Vec<i64> = g.edges().map(|(_, e)| e.buffers()).collect();
        let order = combinational_topo_order(&g, &buffers).unwrap();
        let pos: Vec<usize> = {
            let mut p = vec![0; g.num_nodes()];
            for (i, n) in order.iter().enumerate() {
                p[n.0] = i;
            }
            p
        };
        for (_, e) in g.edges() {
            if e.buffers() == 0 {
                assert!(pos[e.source().0] < pos[e.target().0]);
            }
        }
    }

    #[test]
    fn combinational_cycle_detected() {
        let g = diamond_with_back_edge();
        // Pretend every edge is bufferless: a→b→d→a is combinational.
        let buffers = vec![0i64; g.num_edges()];
        assert!(combinational_topo_order(&g, &buffers).is_err());
    }
}
