//! The core RRG data structures.

use std::fmt;

/// Identifier of a node in an [`Rrg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

/// Identifier of an edge in an [`Rrg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(pub usize);

impl NodeId {
    /// Position of the node in [`Rrg::nodes`].
    pub fn index(self) -> usize {
        self.0
    }
}

impl EdgeId {
    /// Position of the edge in [`Rrg::edges`].
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// Evaluation discipline of a node (the paper's N1/N2 partition).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum NodeKind {
    /// Late evaluation: fires when *all* inputs carry a token.
    #[default]
    Simple,
    /// Early evaluation: fires as soon as the *selected* input carries a
    /// token; anti-tokens are issued on the other inputs.
    EarlyEval,
}

/// A combinational block.
#[derive(Debug, Clone)]
pub struct Node {
    pub(crate) name: String,
    pub(crate) kind: NodeKind,
    pub(crate) delay: f64,
}

impl Node {
    /// Node name (unique within a graph by builder policy, but not
    /// enforced).
    pub fn name(&self) -> &str {
        &self.name
    }
    /// Evaluation discipline.
    pub fn kind(&self) -> NodeKind {
        self.kind
    }
    /// Combinational delay `β(n) ≥ 0`.
    pub fn delay(&self) -> f64 {
        self.delay
    }
    /// `true` for early-evaluation nodes.
    pub fn is_early(&self) -> bool {
        self.kind == NodeKind::EarlyEval
    }
}

/// A channel between two blocks, carrying `R(e)` elastic buffers and
/// `R0(e)` tokens.
#[derive(Debug, Clone)]
pub struct Edge {
    pub(crate) source: NodeId,
    pub(crate) target: NodeId,
    pub(crate) tokens: i64,
    pub(crate) buffers: i64,
    pub(crate) gamma: Option<f64>,
}

impl Edge {
    /// Producer node.
    pub fn source(&self) -> NodeId {
        self.source
    }
    /// Consumer node.
    pub fn target(&self) -> NodeId {
        self.target
    }
    /// `R0(e)`: tokens initially on the edge; negative values are
    /// anti-tokens.
    pub fn tokens(&self) -> i64 {
        self.tokens
    }
    /// `R(e) ≥ max(R0(e), 0)`: number of elastic buffers on the edge.
    pub fn buffers(&self) -> i64 {
        self.buffers
    }
    /// `γ(e)`: guard-selection probability when the target is an
    /// early-evaluation node.
    pub fn gamma(&self) -> Option<f64> {
        self.gamma
    }
    /// Number of *bubbles* (EBs holding no token) on the edge.
    pub fn bubbles(&self) -> i64 {
        self.buffers - self.tokens.max(0)
    }
    /// `true` when the edge has no buffers (a combinational wire).
    pub fn is_combinational(&self) -> bool {
        self.buffers == 0
    }
}

/// A Retiming and Recycling Graph: the directed multigraph ⟨S, β, R0, R, γ⟩
/// of Definition 2.1.
///
/// Construct via [`RrgBuilder`](crate::RrgBuilder); the builder validates
/// the definition's side conditions (liveness, `R ≥ R0`, γ normalisation).
#[derive(Debug, Clone)]
pub struct Rrg {
    pub(crate) nodes: Vec<Node>,
    pub(crate) edges: Vec<Edge>,
    pub(crate) succ: Vec<Vec<EdgeId>>,
    pub(crate) pred: Vec<Vec<EdgeId>>,
}

impl Rrg {
    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Number of simple (late-evaluation) nodes — the paper's `|N1|`.
    pub fn num_simple(&self) -> usize {
        self.nodes.iter().filter(|n| !n.is_early()).count()
    }

    /// Number of early-evaluation nodes — the paper's `|N2|`.
    pub fn num_early(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_early()).count()
    }

    /// Node metadata.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0]
    }

    /// Edge metadata.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn edge(&self, id: EdgeId) -> &Edge {
        &self.edges[id.0]
    }

    /// Iterates over `(id, node)` pairs.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.nodes.iter().enumerate().map(|(i, n)| (NodeId(i), n))
    }

    /// Iterates over `(id, edge)` pairs.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, &Edge)> {
        self.edges.iter().enumerate().map(|(i, e)| (EdgeId(i), e))
    }

    /// All node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len()).map(NodeId)
    }

    /// All edge ids.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> {
        (0..self.edges.len()).map(EdgeId)
    }

    /// Outgoing edges of `n`.
    pub fn out_edges(&self, n: NodeId) -> &[EdgeId] {
        &self.succ[n.0]
    }

    /// Incoming edges of `n`.
    pub fn in_edges(&self, n: NodeId) -> &[EdgeId] {
        &self.pred[n.0]
    }

    /// Looks a node up by name (linear scan).
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.nodes.iter().position(|n| n.name == name).map(NodeId)
    }

    /// Maximum combinational delay `β_max` over all nodes (0 for an empty
    /// graph). This is the starting cycle time of `MIN_EFF_CYC`.
    pub fn max_delay(&self) -> f64 {
        self.nodes.iter().map(|n| n.delay).fold(0.0, f64::max)
    }

    /// Sum of all combinational delays; the paper's `τ*` big-M constant for
    /// the path constraints of Lemma 2.1.
    pub fn total_delay(&self) -> f64 {
        self.nodes.iter().map(|n| n.delay).sum()
    }

    /// Total number of tokens over all edges (counting anti-tokens
    /// negatively).
    pub fn total_tokens(&self) -> i64 {
        self.edges.iter().map(|e| e.tokens).sum()
    }

    /// Total number of positive tokens (`Σ max(R0, 0)`); an upper bound on
    /// the token count of any simple cycle, hence on any retimed `R0`.
    pub fn total_positive_tokens(&self) -> i64 {
        self.edges.iter().map(|e| e.tokens.max(0)).sum()
    }

    /// Total number of elastic buffers.
    pub fn total_buffers(&self) -> i64 {
        self.edges.iter().map(|e| e.buffers).sum()
    }

    /// `true` if the graph has at least one early-evaluation node.
    pub fn has_early(&self) -> bool {
        self.nodes.iter().any(|n| n.is_early())
    }

    /// Returns a copy where every early-evaluation node is downgraded to a
    /// simple node (γ dropped). Used for the late-evaluation baseline
    /// `ξ_nee` of Table 2.
    pub fn with_late_evaluation(&self) -> Rrg {
        let mut g = self.clone();
        for n in &mut g.nodes {
            n.kind = NodeKind::Simple;
        }
        for e in &mut g.edges {
            e.gamma = None;
        }
        g
    }

    /// Rebuilds the adjacency lists from `edges` (crate-internal, used by
    /// the builder and config application).
    pub(crate) fn rebuild_adjacency(&mut self) {
        let n = self.nodes.len();
        self.succ = vec![Vec::new(); n];
        self.pred = vec![Vec::new(); n];
        for (i, e) in self.edges.iter().enumerate() {
            self.succ[e.source.0].push(EdgeId(i));
            self.pred[e.target.0].push(EdgeId(i));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RrgBuilder;

    fn two_node_loop() -> Rrg {
        let mut b = RrgBuilder::new();
        let a = b.add_simple("a", 1.0);
        let c = b.add_simple("c", 2.0);
        b.add_edge(a, c, 1, 1);
        b.add_edge(c, a, 0, 1);
        b.build().unwrap()
    }

    #[test]
    fn accessors_and_counts() {
        let g = two_node_loop();
        assert_eq!(g.num_nodes(), 2);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.num_simple(), 2);
        assert_eq!(g.num_early(), 0);
        assert_eq!(g.max_delay(), 2.0);
        assert_eq!(g.total_delay(), 3.0);
        assert_eq!(g.total_tokens(), 1);
        assert_eq!(g.total_buffers(), 2);
    }

    #[test]
    fn adjacency_is_consistent() {
        let g = two_node_loop();
        let a = g.node_by_name("a").unwrap();
        let c = g.node_by_name("c").unwrap();
        assert_eq!(g.out_edges(a).len(), 1);
        assert_eq!(g.in_edges(a).len(), 1);
        let e = g.out_edges(a)[0];
        assert_eq!(g.edge(e).source(), a);
        assert_eq!(g.edge(e).target(), c);
    }

    #[test]
    fn bubbles_counted() {
        let mut b = RrgBuilder::new();
        let a = b.add_simple("a", 1.0);
        let c = b.add_simple("c", 1.0);
        b.add_edge(a, c, 1, 3); // one token, three EBs → two bubbles
        b.add_edge(c, a, 0, 1);
        let g = b.build().unwrap();
        assert_eq!(g.edge(EdgeId(0)).bubbles(), 2);
        assert_eq!(g.edge(EdgeId(1)).bubbles(), 1);
    }

    #[test]
    fn with_late_evaluation_downgrades_early_nodes() {
        let g = crate::figures::figure_1b(0.5);
        assert!(g.has_early());
        let late = g.with_late_evaluation();
        assert!(!late.has_early());
        assert_eq!(late.num_edges(), g.num_edges());
    }
}
