//! Cycle time of an RRG (Definitions 2.2–2.3): the maximum delay over all
//! combinational paths, i.e. paths whose edges carry no elastic buffers.

use std::error::Error;
use std::fmt;

use crate::algo;
use crate::rrg::{EdgeId, NodeId, Rrg};

/// Failure to compute a finite cycle time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CycleTimeError {
    /// The bufferless subgraph contains a directed cycle; every clock
    /// period is violated. The reported edge lies on such a cycle.
    CombinationalCycle { edge: EdgeId },
}

impl fmt::Display for CycleTimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CycleTimeError::CombinationalCycle { edge } => {
                write!(f, "combinational cycle through edge {edge}")
            }
        }
    }
}

impl Error for CycleTimeError {}

/// A critical combinational path together with its delay.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalPath {
    /// Total delay of the path (= the cycle time).
    pub delay: f64,
    /// Nodes along the path, in order.
    pub nodes: Vec<NodeId>,
}

/// Cycle time `τ(RRG)` under the graph's own buffer assignment.
///
/// # Errors
///
/// [`CycleTimeError::CombinationalCycle`] when some cycle carries no
/// buffers at all.
pub fn cycle_time(g: &Rrg) -> Result<f64, CycleTimeError> {
    let buffers: Vec<i64> = g.edges().map(|(_, e)| e.buffers()).collect();
    cycle_time_with(g, &buffers)
}

/// Cycle time under an explicit buffer assignment (`buffers[i]` = number
/// of EBs on edge `i`), without materialising a new graph. Used by the
/// optimizer to evaluate candidate configurations.
///
/// # Errors
///
/// See [`cycle_time`].
///
/// # Panics
///
/// Panics if `buffers.len() != g.num_edges()`.
pub fn cycle_time_with(g: &Rrg, buffers: &[i64]) -> Result<f64, CycleTimeError> {
    Ok(critical_path_with(g, buffers)?.delay)
}

/// Critical path under the graph's own buffers.
///
/// # Errors
///
/// See [`cycle_time`].
pub fn critical_path(g: &Rrg) -> Result<CriticalPath, CycleTimeError> {
    let buffers: Vec<i64> = g.edges().map(|(_, e)| e.buffers()).collect();
    critical_path_with(g, &buffers)
}

/// Critical path under an explicit buffer assignment.
///
/// The arrival time of a node is `β(n)` plus the largest arrival among its
/// bufferless predecessors; the cycle time is the largest arrival overall.
/// A path's delay includes both endpoints, matching Definition 2.2.
///
/// # Errors
///
/// See [`cycle_time`].
///
/// # Panics
///
/// Panics if `buffers.len() != g.num_edges()`.
pub fn critical_path_with(g: &Rrg, buffers: &[i64]) -> Result<CriticalPath, CycleTimeError> {
    assert_eq!(
        buffers.len(),
        g.num_edges(),
        "buffer vector length mismatch"
    );
    let order = algo::combinational_topo_order(g, buffers)
        .map_err(|edge| CycleTimeError::CombinationalCycle { edge })?;

    let n = g.num_nodes();
    let mut arrival = vec![0.0f64; n];
    let mut pred: Vec<Option<NodeId>> = vec![None; n];
    for &v in &order {
        // The first bufferless predecessor is recorded unconditionally:
        // seeding `best = 0.0` with no predecessor and comparing strictly
        // would drop predecessors whose arrival is 0 (zero-delay path
        // prefixes), truncating the reported critical path.
        let mut best = 0.0f64;
        let mut best_pred = None;
        for &e in g.in_edges(v) {
            if buffers[e.index()] == 0 {
                let u = g.edge(e).source();
                if best_pred.is_none() || arrival[u.0] > best {
                    best = arrival[u.0];
                    best_pred = Some(u);
                }
            }
        }
        arrival[v.0] = best + g.node(v).delay();
        pred[v.0] = best_pred;
    }

    let mut end = NodeId(0);
    let mut delay = 0.0f64;
    for v in g.node_ids() {
        if arrival[v.0] > delay {
            delay = arrival[v.0];
            end = v;
        }
    }
    if n == 0 {
        return Ok(CriticalPath {
            delay: 0.0,
            nodes: Vec::new(),
        });
    }
    let mut nodes = vec![end];
    let mut cur = end;
    while let Some(p) = pred[cur.0] {
        nodes.push(p);
        cur = p;
    }
    nodes.reverse();
    Ok(CriticalPath { delay, nodes })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{figures, RrgBuilder};

    #[test]
    fn figure_1a_cycle_time_is_three() {
        let g = figures::figure_1a(0.5);
        let cp = critical_path(&g).unwrap();
        assert_eq!(cp.delay, 3.0);
        // The full combinational path, endpoint to endpoint: F1 (whose
        // input edge carries the EB) through the zero-delay f and m.
        let names: Vec<&str> = cp.nodes.iter().map(|&n| g.node(n).name()).collect();
        assert_eq!(names, ["F1", "F2", "F3", "f", "m"]);
    }

    #[test]
    fn zero_delay_path_prefix_is_reported() {
        // A zero-delay source used to be dropped from the reported path:
        // its arrival time of 0 never beat the `best = 0.0` seed, so the
        // backtrack stopped one node short of the true endpoint.
        let mut b = RrgBuilder::new();
        let a = b.add_simple("a", 0.0);
        let c = b.add_simple("c", 1.0);
        b.add_edge(a, c, 0, 0);
        b.add_edge(c, a, 1, 1);
        let g = b.build().unwrap();
        let cp = critical_path(&g).unwrap();
        assert_eq!(cp.delay, 1.0);
        let names: Vec<&str> = cp.nodes.iter().map(|&n| g.node(n).name()).collect();
        assert_eq!(names, ["a", "c"], "zero-delay prefix omitted");
    }

    #[test]
    fn figure_1b_cycle_time_is_one() {
        let g = figures::figure_1b(0.5);
        assert_eq!(cycle_time(&g).unwrap(), 1.0);
    }

    #[test]
    fn figure_2_cycle_time_is_one() {
        let g = figures::figure_2(0.5);
        assert_eq!(cycle_time(&g).unwrap(), 1.0);
    }

    #[test]
    fn buffers_break_paths() {
        let mut b = RrgBuilder::new();
        let a = b.add_simple("a", 5.0);
        let c = b.add_simple("c", 7.0);
        b.add_edge(a, c, 1, 1);
        b.add_edge(c, a, 1, 1);
        let g = b.build().unwrap();
        // Both edges buffered: the longest combinational path is a single
        // node.
        assert_eq!(cycle_time(&g).unwrap(), 7.0);
    }

    #[test]
    fn alternative_buffer_vector_changes_cycle_time() {
        let mut b = RrgBuilder::new();
        let a = b.add_simple("a", 5.0);
        let c = b.add_simple("c", 7.0);
        b.add_edge(a, c, 1, 1);
        b.add_edge(c, a, 0, 0);
        let g = b.build().unwrap();
        assert_eq!(cycle_time(&g).unwrap(), 12.0); // path c,a
        assert_eq!(cycle_time_with(&g, &[1, 1]).unwrap(), 7.0);
    }

    #[test]
    fn combinational_cycle_is_an_error() {
        let mut b = RrgBuilder::new();
        let a = b.add_simple("a", 1.0);
        let c = b.add_simple("c", 1.0);
        b.add_edge(a, c, 1, 1);
        b.add_edge(c, a, 0, 0);
        let g = b.build().unwrap();
        // Remove the buffer from edge 0 by overriding the buffer vector.
        let err = cycle_time_with(&g, &[0, 0]).unwrap_err();
        assert!(matches!(err, CycleTimeError::CombinationalCycle { .. }));
    }
}
