//! Simulator cost comparison on shared random workloads: cycles/second of
//! the TGMG discrete-event simulator vs the cycle-accurate elastic
//! machine (unbounded and bounded capacity) — the ablation behind the
//! footnote-1 "big enough FIFOs" assumption.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use rr_elastic::{simulate as machine_sim, Capacity, MachineParams};
use rr_rrg::generate::GeneratorParams;
use rr_tgmg::{sim as tgmg_sim, skeleton::tgmg_of};

const HORIZON: u64 = 5_000;

fn bench_simulators(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulators_5k_cycles");
    group.sample_size(10);
    group.throughput(Throughput::Elements(HORIZON));
    for &(nodes, edges) in &[(12usize, 24usize), (48, 96)] {
        let early = (nodes / 8).max(1);
        let p = GeneratorParams::paper_defaults(nodes - early, early, edges);
        let g = p.generate(7);
        let t = tgmg_of(&g);

        group.bench_with_input(BenchmarkId::new("tgmg", edges), &t, |b, t| {
            let params = tgmg_sim::SimParams {
                horizon: HORIZON,
                warmup: HORIZON / 10,
                ..Default::default()
            };
            b.iter(|| tgmg_sim::simulate(black_box(t), &params).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("machine_unbounded", edges), &g, |b, g| {
            let params = MachineParams {
                horizon: HORIZON,
                warmup: HORIZON / 10,
                ..Default::default()
            };
            b.iter(|| machine_sim(black_box(g), &params).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("machine_bounded", edges), &g, |b, g| {
            let params = MachineParams {
                horizon: HORIZON,
                warmup: HORIZON / 10,
                capacity: Capacity::PerBuffer(2),
                ..Default::default()
            };
            b.iter(|| {
                // Bounded runs can deadlock on wire-heavy graphs; that
                // outcome is part of what we measure.
                let _ = machine_sim(black_box(g), &params);
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_simulators
}
criterion_main!(benches);
