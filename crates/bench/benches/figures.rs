//! Criterion bench for the motivating-example pipeline (Figures 1–2):
//! how much each analysis method costs on the same small system — exact
//! Markov chain vs TGMG simulation vs cycle-accurate machine vs LP bound.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use rr_elastic::{simulate as machine_sim, MachineParams};
use rr_markov::exact_throughput;
use rr_rrg::figures;
use rr_tgmg::{lp_bound, sim as tgmg_sim, skeleton::tgmg_of};

fn bench_methods(c: &mut Criterion) {
    let g = figures::figure_1b(0.9);
    let tgmg = tgmg_of(&g);
    let mut group = c.benchmark_group("figure_1b_throughput_methods");
    group.bench_function("markov_exact", |b| {
        b.iter(|| exact_throughput(black_box(&g)).unwrap().throughput)
    });
    group.bench_function("tgmg_sim_30k", |b| {
        b.iter(|| {
            tgmg_sim::simulate(black_box(&tgmg), &tgmg_sim::SimParams::default())
                .unwrap()
                .throughput
        })
    });
    group.bench_function("machine_sim_30k", |b| {
        b.iter(|| {
            machine_sim(black_box(&g), &MachineParams::default())
                .unwrap()
                .throughput
        })
    });
    group.bench_function("lp_bound", |b| {
        b.iter(|| lp_bound::throughput_upper_bound(black_box(&tgmg)).unwrap())
    });
    group.finish();
}

fn bench_optimizer_rediscovery(c: &mut Criterion) {
    let g = figures::figure_1a(0.9);
    let opts = rr_core::CoreOptions::fast();
    c.bench_function("min_eff_cyc_figure_1a", |b| {
        b.iter(|| rr_core::algorithm::min_eff_cyc(black_box(&g), &opts).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_methods, bench_optimizer_rediscovery
}
criterion_main!(benches);
