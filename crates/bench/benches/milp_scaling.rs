//! MILP/LP scaling bench — the reproduction-side counterpart of the
//! paper's §6 remark that "the proposed MILPs are difficult to solve
//! exactly for circuit graphs with more than one thousand edges".
//!
//! Measures, as the random-graph size grows:
//! * the LP throughput-bound solve (pure simplex),
//! * the `MAX_THR` MILP at the min-delay cycle time (simplex + B&B),
//!
//! and — the perf contract of the revised-simplex kernel — an explicit
//! **kernel A/B comparison**: every instance is solved with the
//! production kernel (revised simplex + Markowitz sparse LU,
//! warm-started branch & bound), with the same kernel over the dense-LU
//! snapshot (`FactorKind::Dense` — the factorization oracle), and with
//! the dense-tableau oracle (cold restarts), in the same run. Wall time,
//! simplex pivots, node counts, basis `nnz(L+U)` and refactorization
//! counts are appended to `BENCH_milp.json` (see `rr_bench::bench_log`)
//! so both speedup trajectories are tracked across PRs.
//!
//! The run **fails loudly** — after the records are written — if any
//! kernel/factorization disagrees with its oracle on a completed
//! (non-truncated) instance: a silent skip here would let a numerical
//! regression masquerade as a perf win.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Instant;

use rr_bench::bench_log::{append, JsonRecord};
use rr_bench::milp_bench_instance as instance;
use rr_core::{formulation, CoreOptions};
use rr_milp::{
    cmp, solve_with_stats, Branching, FactorKind, FaultPlan, Kernel, LinExpr, Model, NodeOrder,
    Pricing, RecoveryStats, Sense, SolverOptions, UpdateKind,
};
use rr_rrg::Rrg;
use rr_tgmg::{lp_bound, skeleton::tgmg_of};

fn bench_lp_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("lp_bound_scaling");
    group.sample_size(10);
    for &edges in &[20usize, 60, 120, 240] {
        let t = tgmg_of(&instance(edges));
        group.bench_with_input(BenchmarkId::from_parameter(edges), &t, |b, t| {
            b.iter(|| lp_bound::throughput_upper_bound(black_box(t)).unwrap())
        });
    }
    group.finish();
}

fn bench_milp_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("max_thr_scaling");
    group.sample_size(10);
    for &edges in &[20usize, 40] {
        let g = instance(edges);
        let opts = CoreOptions::fast();
        group.bench_with_input(BenchmarkId::from_parameter(edges), &g, |b, g| {
            b.iter(|| formulation::max_thr(black_box(g), g.max_delay(), &opts).unwrap())
        });
    }
    group.finish();
}

/// One `MAX_THR` measurement: wall time, objective and truncation flag.
struct MilpMeasurement {
    record: JsonRecord,
    label: &'static str,
    wall_ms: f64,
    objective: f64,
    truncated: bool,
    peak_lu_nnz: usize,
    basis_rows: usize,
}

/// Solves `MAX_THR` once with explicit kernel/factorization options and
/// returns a filled record plus the headline numbers.
fn measure_milp(
    g: &Rrg,
    edges: usize,
    kernel: Kernel,
    warm: bool,
    factor: FactorKind,
) -> MilpMeasurement {
    let mut opts = CoreOptions::fast();
    opts.solver.kernel = kernel;
    opts.solver.warm_start = warm;
    opts.solver.factor = factor;
    let t0 = Instant::now();
    let out = formulation::max_thr(g, g.max_delay(), &opts).expect("MAX_THR solves");
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let label = match (kernel, warm, factor) {
        (Kernel::Revised, true, FactorKind::Sparse) => "revised_warm",
        (Kernel::Revised, true, FactorKind::Dense) => "revised_warm_denselu",
        (Kernel::Revised, false, _) => "revised_cold",
        (Kernel::DenseTableau, ..) => "dense_oracle",
    };
    let record = JsonRecord::new("milp_scaling")
        .str("problem", "max_thr")
        .int("edges", edges as u64)
        .str("kernel", label)
        .str("order", "dfs")
        .num("wall_ms", wall_ms)
        .num("objective", out.objective)
        .int("nodes", out.stats.nodes as u64)
        .int("pivots", out.stats.simplex_iters as u64)
        .int("warm_solves", out.stats.warm_solves as u64)
        .int("cold_solves", out.stats.cold_solves as u64)
        .int("refactors", out.stats.refactors as u64)
        .int("ft_updates", out.stats.ft_updates as u64)
        .int("forced_refactors", out.stats.forced_refactors as u64)
        .int("lu_nnz", out.stats.peak_lu_nnz as u64)
        .int("u_nnz", out.stats.peak_u_nnz as u64)
        .int("basis_rows", out.stats.basis_rows as u64)
        .int("truncated", u64::from(out.stats.truncated));
    MilpMeasurement {
        record,
        label,
        wall_ms,
        objective: out.objective,
        truncated: out.stats.truncated,
        peak_lu_nnz: out.stats.peak_lu_nnz,
        basis_rows: out.stats.basis_rows,
    }
}

/// Solves the LP throughput bound once with an explicit kernel.
fn measure_lp(g: &Rrg, edges: usize, kernel: Kernel) -> (JsonRecord, f64, f64) {
    let mut solver = rr_milp::SolverOptions::default();
    solver.kernel = kernel;
    let t = tgmg_of(g);
    let t0 = Instant::now();
    let (bound, pivots) =
        lp_bound::throughput_upper_bound_counted(&t, &solver).expect("LP bound solves");
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let label = match kernel {
        Kernel::Revised => "revised",
        Kernel::DenseTableau => "dense_oracle",
    };
    let record = JsonRecord::new("milp_scaling")
        .str("problem", "lp_bound")
        .int("edges", edges as u64)
        .str("kernel", label)
        .num("wall_ms", wall_ms)
        .num("objective", bound)
        .int("pivots", pivots as u64);
    (record, wall_ms, bound)
}

/// One node-ordering measurement of `MAX_THR` at a fixed node cap (no
/// wall clock, so the run is deterministic).
fn measure_order(
    g: &Rrg,
    edges: usize,
    order: NodeOrder,
    factor: FactorKind,
    max_nodes: usize,
) -> (JsonRecord, f64, bool) {
    let mut opts = CoreOptions::fast();
    opts.solver.time_limit = None;
    opts.solver.max_nodes = max_nodes;
    opts.solver.node_order = order;
    opts.solver.factor = factor;
    // Pinned to the historical regime: pseudo-cost branching closes
    // these instances in a handful of nodes, which would erase the
    // ordering effect this A/B tracks (branching has its own A/B in
    // `branching_comparison`).
    opts.solver.branching = Branching::MostFractional;
    opts.cuts = false;
    let t0 = Instant::now();
    let out = formulation::max_thr(g, g.max_delay(), &opts).expect("MAX_THR solves");
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let order_label = match order {
        NodeOrder::DfsNearerFirst => "dfs",
        NodeOrder::BestBound => "best_bound",
    };
    let record = JsonRecord::new("milp_scaling")
        .str("problem", "max_thr_ordering")
        .int("edges", edges as u64)
        .str(
            "kernel",
            match factor {
                FactorKind::Sparse => "revised_warm",
                FactorKind::Dense => "revised_warm_denselu",
            },
        )
        .str("order", order_label)
        .int("node_cap", max_nodes as u64)
        .num("wall_ms", wall_ms)
        .num("objective", out.objective)
        .int("nodes", out.stats.nodes as u64)
        .int("pivots", out.stats.simplex_iters as u64)
        .int("incumbents", out.stats.incumbents as u64)
        .int(
            "first_incumbent_node",
            out.stats.first_incumbent_node as u64,
        )
        .int("queue_peak", out.stats.queue_peak as u64)
        .int("truncated", u64::from(out.stats.truncated));
    (record, out.objective, out.stats.truncated)
}

/// The node-ordering A/B: `MAX_THR` on every bench instance under both
/// orderings and both factorizations at a fixed node cap — the ROADMAP
/// plateau case (truncated DFS on the 40-edge dense-LU run returns 4.0
/// where best-bound finds 3.0), recorded per instance. Completed runs
/// must agree on the objective; truncated runs record their incumbent
/// quality, and best-bound must never end *worse* than DFS at the same
/// cap.
fn ordering_comparison(_c: &mut Criterion) {
    let mut records = Vec::new();
    let mut disagreements: Vec<String> = Vec::new();
    let cap = 1000;
    for &edges in &[20usize, 40] {
        let g = instance(edges);
        for factor in [FactorKind::Sparse, FactorKind::Dense] {
            let (rec, dfs_obj, dfs_trunc) =
                measure_order(&g, edges, NodeOrder::DfsNearerFirst, factor, cap);
            records.push(rec);
            let (rec, bb_obj, bb_trunc) =
                measure_order(&g, edges, NodeOrder::BestBound, factor, cap);
            records.push(rec);
            if !dfs_trunc && !bb_trunc && (dfs_obj - bb_obj).abs() > 1e-7 * dfs_obj.abs().max(1.0) {
                disagreements.push(format!(
                    "max_thr {edges} edges / {factor:?}: completed orderings disagree, \
                     dfs {dfs_obj} vs best_bound {bb_obj}"
                ));
            }
            // MAX_THR minimizes x: at the same cap the best-bound
            // incumbent must be at least as good as DFS's.
            if bb_obj > dfs_obj + 1e-7 {
                disagreements.push(format!(
                    "max_thr {edges} edges / {factor:?}: best_bound incumbent {bb_obj} \
                     worse than dfs {dfs_obj} at node cap {cap}"
                ));
            }
            println!(
                "ordering comparison: max_thr {edges} edges / {factor:?} @ {cap} nodes: \
                 dfs {dfs_obj}{} vs best_bound {bb_obj}{}",
                if dfs_trunc { " (truncated)" } else { "" },
                if bb_trunc { " (truncated)" } else { "" },
            );
        }
    }
    append(&records);
    assert!(
        disagreements.is_empty(),
        "node-ordering regression (records already in BENCH_milp.json):\n{}",
        disagreements.join("\n")
    );
}

/// One branching-rule measurement of `MAX_THR` at a fixed node cap (no
/// wall clock, so the run is deterministic).
struct BranchingMeasurement {
    record: JsonRecord,
    objective: f64,
    nodes: usize,
    truncated: bool,
    proven: bool,
}

fn measure_branching(
    name: &str,
    g: &Rrg,
    branching: Branching,
    cuts: bool,
    max_nodes: usize,
) -> BranchingMeasurement {
    let mut opts = CoreOptions::fast();
    opts.solver.time_limit = None;
    opts.solver.max_nodes = max_nodes;
    opts.solver.factor = FactorKind::Sparse;
    opts.solver.branching = branching;
    opts.cuts = cuts;
    let t0 = Instant::now();
    let out = formulation::max_thr(g, g.max_delay(), &opts).expect("MAX_THR solves");
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let label = match branching {
        Branching::MostFractional => "most_fractional",
        Branching::PseudoCost => "pseudo_cost",
    };
    let record = JsonRecord::new("milp_scaling")
        .str("problem", "max_thr_branching")
        .str("instance", name)
        .str("branching", label)
        .int("cuts", u64::from(cuts))
        .int("node_cap", max_nodes as u64)
        .num("wall_ms", wall_ms)
        .num("objective", out.objective)
        .int("nodes", out.stats.nodes as u64)
        .int("pivots", out.stats.simplex_iters as u64)
        .int("strong_branches", out.stats.strong_branches as u64)
        .int("pseudo_updates", out.stats.pseudo_updates as u64)
        .int("cuts_added", out.stats.cuts_added as u64)
        .int("cuts_activated", out.stats.cuts_activated as u64)
        .num("dual_bound", out.stats.dual_bound)
        .int("truncated", u64::from(out.stats.truncated));
    BranchingMeasurement {
        record,
        objective: out.objective,
        nodes: out.stats.nodes,
        truncated: out.stats.truncated,
        proven: out.proven_optimal,
    }
}

/// The branching-rule A/B — the PR 8 search-strength contract: on the
/// 40-edge `MAX_THR` bench at the 1000-node cap and on the s27 Table-2
/// profile, pseudo-cost branching with cycle-sum cuts must prove
/// optimality in **strictly fewer** expanded nodes than most-fractional
/// manages at the same budget (most-fractional truncates both). Records
/// land in `BENCH_milp.json` before the assertions, so a regression
/// fails loudly with the evidence on disk.
fn branching_comparison(_c: &mut Criterion) {
    let mut records = Vec::new();
    let mut regressions: Vec<String> = Vec::new();
    let s27 = rr_rrg::iscas::IscasProfile::by_name("s27")
        .expect("s27 is a Table-2 profile")
        .generate(2009);
    let cases: [(&str, &Rrg, usize); 2] = [("bench40", &instance(40), 1000), ("s27", &s27, 20_000)];
    for (name, g, cap) in cases {
        let mf = measure_branching(name, g, Branching::MostFractional, false, cap);
        let pc = measure_branching(name, g, Branching::PseudoCost, true, cap);
        println!(
            "branching comparison: max_thr {name} @ {cap} nodes: \
             most_fractional obj {} in {} nodes{} vs pseudo_cost+cuts obj {} in {} nodes{}",
            mf.objective,
            mf.nodes,
            if mf.truncated { " (truncated)" } else { "" },
            pc.objective,
            pc.nodes,
            if pc.truncated { " (truncated)" } else { "" },
        );
        records.push(mf.record.clone());
        records.push(pc.record.clone());
        if pc.nodes >= mf.nodes {
            regressions.push(format!(
                "max_thr {name}: pseudo-cost + cuts expanded {} nodes, most-fractional {} — \
                 the search-strength contract is broken",
                pc.nodes, mf.nodes
            ));
        }
        if !pc.proven {
            regressions.push(format!(
                "max_thr {name}: pseudo-cost + cuts no longer proves optimality at the \
                 {cap}-node cap"
            ));
        }
        // MAX_THR minimizes x: the stronger search must never return a
        // worse incumbent at the same budget.
        if pc.objective > mf.objective + 1e-7 {
            regressions.push(format!(
                "max_thr {name}: pseudo-cost incumbent {} worse than most-fractional {}",
                pc.objective, mf.objective
            ));
        }
    }
    append(&records);
    assert!(
        regressions.is_empty(),
        "branching regression (records already in BENCH_milp.json):\n{}",
        regressions.join("\n")
    );
}

/// One pricing-rule measurement of `MAX_THR` at a fixed node cap (no
/// wall clock, so the run is deterministic), under the production
/// search configuration (pseudo-cost branching + cycle-sum cuts).
struct PricingMeasurement {
    record: JsonRecord,
    objective: f64,
    pivots: usize,
    truncated: bool,
}

fn measure_pricing(name: &str, g: &Rrg, pricing: Pricing, max_nodes: usize) -> PricingMeasurement {
    let mut opts = CoreOptions::fast();
    opts.solver.time_limit = None;
    opts.solver.max_nodes = max_nodes;
    opts.solver.factor = FactorKind::Sparse;
    opts.solver.pricing = pricing;
    let t0 = Instant::now();
    let out = formulation::max_thr(g, g.max_delay(), &opts).expect("MAX_THR solves");
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let label = match pricing {
        Pricing::SteepestEdge => "steepest_edge",
        Pricing::Dantzig => "dantzig",
    };
    let record = JsonRecord::new("milp_scaling")
        .str("problem", "max_thr_pricing")
        .str("instance", name)
        .str("pricing", label)
        .int("node_cap", max_nodes as u64)
        .num("wall_ms", wall_ms)
        .num("objective", out.objective)
        .int("nodes", out.stats.nodes as u64)
        .int("pivots", out.stats.simplex_iters as u64)
        .int("dual_pivots", out.stats.dual_pivots as u64)
        .int("primal_pivots", out.stats.primal_pivots as u64)
        .int("bound_flips", out.stats.bound_flips as u64)
        .int("weight_resets", out.stats.weight_resets as u64)
        .num("dual_bound", out.stats.dual_bound)
        .int("truncated", u64::from(out.stats.truncated));
    PricingMeasurement {
        record,
        objective: out.objective,
        pivots: out.stats.simplex_iters,
        truncated: out.stats.truncated,
    }
}

/// The pricing A/B — the PR 9 hot-path contract: on the 20- and 40-edge
/// `MAX_THR` benches at the 1000-node cap, steepest-edge pricing (dual
/// steepest-edge rows, Devex columns, long-step ratio test) must agree
/// with Dantzig on every completed run, and on the 40-edge instance it
/// must prove the optimum in **strictly fewer total pivots**. Records
/// land in `BENCH_milp.json` before the assertions, so a regression
/// fails loudly with the evidence on disk.
fn pricing_comparison(_c: &mut Criterion) {
    let mut records = Vec::new();
    let mut regressions: Vec<String> = Vec::new();
    for (name, edges) in [("bench20", 20usize), ("bench40", 40)] {
        let g = instance(edges);
        let se = measure_pricing(name, &g, Pricing::SteepestEdge, 1000);
        let dz = measure_pricing(name, &g, Pricing::Dantzig, 1000);
        println!(
            "pricing comparison: max_thr {name} @ 1000 nodes: \
             steepest_edge obj {} in {} pivots{} vs dantzig obj {} in {} pivots{}",
            se.objective,
            se.pivots,
            if se.truncated { " (truncated)" } else { "" },
            dz.objective,
            dz.pivots,
            if dz.truncated { " (truncated)" } else { "" },
        );
        records.push(se.record.clone());
        records.push(dz.record.clone());
        if !se.truncated && !dz.truncated && (se.objective - dz.objective).abs() > 1e-7 {
            regressions.push(format!(
                "max_thr {name}: completed runs disagree — steepest-edge {} vs dantzig {}",
                se.objective, dz.objective
            ));
        }
        if name == "bench40" && se.pivots >= dz.pivots {
            regressions.push(format!(
                "max_thr {name}: steepest-edge took {} pivots, dantzig {} — \
                 the pricing hot-path contract is broken",
                se.pivots, dz.pivots
            ));
        }
    }
    append(&records);
    assert!(
        regressions.is_empty(),
        "pricing regression (records already in BENCH_milp.json):\n{}",
        regressions.join("\n")
    );
}

/// One update-scheme measurement of `MAX_THR` at a fixed node cap (no
/// wall clock, so the run is deterministic).
struct UpdateMeasurement {
    record: JsonRecord,
    objective: f64,
    truncated: bool,
    wall_ms: f64,
    refactors: usize,
    forced_refactors: usize,
    ft_updates: usize,
    peak_u_nnz: usize,
}

fn measure_update(
    g: &Rrg,
    edges: usize,
    factor: FactorKind,
    update: UpdateKind,
    max_nodes: usize,
) -> UpdateMeasurement {
    let mut opts = CoreOptions::fast();
    opts.solver.time_limit = None;
    opts.solver.max_nodes = max_nodes;
    opts.solver.factor = factor;
    opts.solver.update = update;
    let t0 = Instant::now();
    let out = formulation::max_thr(g, g.max_delay(), &opts).expect("MAX_THR solves");
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let update_label = match update {
        UpdateKind::ForrestTomlin => "forrest_tomlin",
        UpdateKind::ProductForm => "product_form",
    };
    let record = JsonRecord::new("milp_scaling")
        .str("problem", "max_thr_update")
        .int("edges", edges as u64)
        .str(
            "kernel",
            match factor {
                FactorKind::Sparse => "revised_warm",
                FactorKind::Dense => "revised_warm_denselu",
            },
        )
        .str("update", update_label)
        .int("node_cap", max_nodes as u64)
        .num("wall_ms", wall_ms)
        .num("objective", out.objective)
        .int("nodes", out.stats.nodes as u64)
        .int("pivots", out.stats.simplex_iters as u64)
        .int("refactors", out.stats.refactors as u64)
        .int("forced_refactors", out.stats.forced_refactors as u64)
        .int("ft_updates", out.stats.ft_updates as u64)
        .int("lu_nnz", out.stats.peak_lu_nnz as u64)
        .int("u_nnz", out.stats.peak_u_nnz as u64)
        .int("truncated", u64::from(out.stats.truncated));
    UpdateMeasurement {
        record,
        objective: out.objective,
        truncated: out.stats.truncated,
        wall_ms,
        refactors: out.stats.refactors,
        forced_refactors: out.stats.forced_refactors,
        ft_updates: out.stats.ft_updates,
        peak_u_nnz: out.stats.peak_u_nnz,
    }
}

/// The update-scheme A/B: `MAX_THR` on every bench instance under every
/// `UpdateKind` × `FactorKind` combination at a fixed node cap — the
/// Forrest–Tomlin perf contract. Completed runs must agree on the
/// objective (a silently-wrong FT update fails loudly here, with the
/// evidence already in `BENCH_milp.json`), and on the largest instance
/// the Forrest–Tomlin path must perform **strictly fewer** full
/// refactorizations than the product-form path at the identical node
/// budget; both wall times are recorded per instance.
fn update_comparison(_c: &mut Criterion) {
    let mut records = Vec::new();
    let mut disagreements: Vec<String> = Vec::new();
    let cap = 1000;
    let mut largest: Option<(usize, UpdateMeasurement, UpdateMeasurement)> = None;
    for &edges in &[20usize, 40] {
        let g = instance(edges);
        let mut completed: Vec<(String, f64)> = Vec::new();
        let mut sparse_pair: Option<(UpdateMeasurement, UpdateMeasurement)> = None;
        for factor in [FactorKind::Sparse, FactorKind::Dense] {
            let ft = measure_update(&g, edges, factor, UpdateKind::ForrestTomlin, cap);
            let pf = measure_update(&g, edges, factor, UpdateKind::ProductForm, cap);
            println!(
                "update comparison: max_thr {edges} edges / {factor:?} @ {cap} nodes: \
                 forrest_tomlin {:.1} ms obj {}{} ({} refactors, {} forced, {} ft updates, \
                 peak u_nnz {}) vs product_form {:.1} ms obj {}{} ({} refactors)",
                ft.wall_ms,
                ft.objective,
                if ft.truncated { " (truncated)" } else { "" },
                ft.refactors,
                ft.forced_refactors,
                ft.ft_updates,
                ft.peak_u_nnz,
                pf.wall_ms,
                pf.objective,
                if pf.truncated { " (truncated)" } else { "" },
                pf.refactors,
            );
            for (label, m) in [("forrest_tomlin", &ft), ("product_form", &pf)] {
                records.push(m.record.clone());
                if !m.truncated {
                    completed.push((format!("{factor:?}/{label}"), m.objective));
                }
            }
            if factor == FactorKind::Sparse {
                sparse_pair = Some((ft, pf));
            }
        }
        // All completed UpdateKind × FactorKind combinations must agree.
        if let Some((ref_name, ref_obj)) = completed.first().cloned() {
            for (name, obj) in &completed[1..] {
                if (obj - ref_obj).abs() > 1e-7 * ref_obj.abs().max(1.0) {
                    disagreements.push(format!(
                        "max_thr {edges} edges: completed combinations disagree, \
                         {ref_name} {ref_obj} vs {name} {obj}"
                    ));
                }
            }
        }
        // Keep the genuinely largest instance regardless of list order.
        if largest.as_ref().is_none_or(|&(e, _, _)| edges > e) {
            largest = sparse_pair.map(|(ft, pf)| (edges, ft, pf));
        }
    }
    if let Some((edges, ft, pf)) = largest {
        records.push(
            JsonRecord::new("milp_ft_summary")
                .int("largest_edges", edges as u64)
                .int("node_cap", cap as u64)
                .num("ft_wall_ms", ft.wall_ms)
                .num("pf_wall_ms", pf.wall_ms)
                .int("ft_refactors", ft.refactors as u64)
                .int("pf_refactors", pf.refactors as u64)
                .int("ft_forced_refactors", ft.forced_refactors as u64)
                .int("ft_updates", ft.ft_updates as u64)
                .int("ft_peak_u_nnz", ft.peak_u_nnz as u64),
        );
        // The FT perf contract on the largest instance: strictly fewer
        // full refactorizations at the identical node budget.
        if ft.refactors >= pf.refactors {
            disagreements.push(format!(
                "max_thr {edges} edges: forrest_tomlin performed {} refactors, \
                 product_form only {} — the update scheme is not saving refactorizations",
                ft.refactors, pf.refactors
            ));
        }
    }
    append(&records);
    assert!(
        disagreements.is_empty(),
        "update-scheme regression (records already in BENCH_milp.json):\n{}",
        disagreements.join("\n")
    );
}

/// The A/B pass: every instance solved by the production configuration
/// (revised + sparse LU, warm), the dense-LU factorization oracle, the
/// cold restart baseline, and the dense-tableau oracle; both speedups
/// (vs the dense *snapshot* and vs the dense *tableau*) recorded for the
/// largest MILP. Records are written to `BENCH_milp.json` **before** the
/// agreement checks, so a disagreement fails loudly with the evidence
/// already on disk.
fn kernel_comparison(_c: &mut Criterion) {
    let mut records = Vec::new();
    let mut lp_disagreements: Vec<String> = Vec::new();
    for &edges in &[60usize, 240] {
        let g = instance(edges);
        let (rec, _, revised_obj) = measure_lp(&g, edges, Kernel::Revised);
        records.push(rec);
        let (rec, _, oracle_obj) = measure_lp(&g, edges, Kernel::DenseTableau);
        records.push(rec);
        if (revised_obj - oracle_obj).abs() > 1e-7 * revised_obj.abs().max(1.0) {
            lp_disagreements.push(format!(
                "lp_bound {edges} edges: revised {revised_obj} vs dense oracle {oracle_obj}"
            ));
        }
    }
    let mut milp_disagreements: Vec<String> = Vec::new();
    let mut largest: Option<(usize, MilpMeasurement, MilpMeasurement, MilpMeasurement)> = None;
    for &edges in &[20usize, 40] {
        let g = instance(edges);
        let warm = measure_milp(&g, edges, Kernel::Revised, true, FactorKind::Sparse);
        let denselu = measure_milp(&g, edges, Kernel::Revised, true, FactorKind::Dense);
        let cold = measure_milp(&g, edges, Kernel::Revised, false, FactorKind::Sparse);
        let oracle = measure_milp(&g, edges, Kernel::DenseTableau, false, FactorKind::Sparse);
        // Truncated searches may legitimately hold different incumbents
        // (same caps, different pivot paths); completed ones must agree.
        for pair in [&denselu, &cold, &oracle] {
            if !warm.truncated
                && !pair.truncated
                && (warm.objective - pair.objective).abs() > 1e-7 * warm.objective.abs().max(1.0)
            {
                milp_disagreements.push(format!(
                    "max_thr {edges} edges: revised_warm {} vs {} {}",
                    warm.objective, pair.label, pair.objective
                ));
            }
        }
        for m in [&warm, &denselu, &cold, &oracle] {
            records.push(m.record.clone());
        }
        largest = Some((edges, warm, denselu, oracle));
    }
    if let Some((edges, warm, denselu, oracle)) = largest {
        let truncated = warm.truncated || denselu.truncated || oracle.truncated;
        let factor_speedup = denselu.wall_ms / warm.wall_ms.max(1e-9);
        let oracle_speedup = oracle.wall_ms / warm.wall_ms.max(1e-9);
        println!(
            "kernel comparison: largest MAX_THR instance ({edges} edges) \
             sparse-LU {:.1} ms vs dense-LU snapshot {:.1} ms (×{factor_speedup:.2}) \
             vs dense tableau {:.1} ms (×{oracle_speedup:.2}); \
             nnz(L+U) {} vs m² = {}{}",
            warm.wall_ms,
            denselu.wall_ms,
            oracle.wall_ms,
            warm.peak_lu_nnz,
            warm.basis_rows * warm.basis_rows,
            if truncated {
                "  (budget-truncated: same node/time caps, incumbents may differ)"
            } else {
                ""
            }
        );
        records.push(
            JsonRecord::new("milp_scaling_summary")
                .int("largest_edges", edges as u64)
                .num("revised_warm_ms", warm.wall_ms)
                .num("dense_lu_ms", denselu.wall_ms)
                .num("dense_oracle_ms", oracle.wall_ms)
                .num("factor_speedup", factor_speedup)
                .num("speedup", oracle_speedup)
                .int("sparse_lu_nnz", warm.peak_lu_nnz as u64)
                .int("dense_lu_nnz", denselu.peak_lu_nnz as u64)
                .int("basis_rows", warm.basis_rows as u64)
                .num("revised_warm_objective", warm.objective)
                .num("dense_oracle_objective", oracle.objective)
                .int("truncated", u64::from(truncated)),
        );
    }
    append(&records);
    // Loud failure *after* the evidence is logged.
    let disagreements: Vec<String> = lp_disagreements
        .into_iter()
        .chain(milp_disagreements)
        .collect();
    assert!(
        disagreements.is_empty(),
        "kernel/oracle disagreement (records already in BENCH_milp.json):\n{}",
        disagreements.join("\n")
    );
}

/// One fault-ladder measurement of `MIN_CYC(1)`: wall time, objective,
/// truncation flag and the full recovery-counter block, all appended to
/// `BENCH_milp.json` so the ladder's activity is tracked across PRs.
/// (`MIN_CYC` rather than `MAX_THR` because the bench instances complete
/// it within the node cap — completed twins must agree *exactly*,
/// whereas truncated twins may legitimately hold different incumbents.)
struct FaultMeasurement {
    record: JsonRecord,
    wall_ms: f64,
    objective: f64,
    truncated: bool,
    recovery: RecoveryStats,
}

fn measure_faults(g: &Rrg, edges: usize, faults: Option<FaultPlan>, seed: u64) -> FaultMeasurement {
    let mut opts = CoreOptions::fast();
    opts.solver.time_limit = None; // deterministic: node cap only
    opts.solver.max_nodes = 20_000;
    opts.solver.gap_tol = 1e-9;
    let variant = if faults.is_some() { "faulted" } else { "clean" };
    opts.solver.faults = faults;
    let t0 = Instant::now();
    let out = formulation::min_cyc(g, 1.0, &opts).expect("MIN_CYC solves");
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let r = &out.stats.recovery;
    let record = JsonRecord::new("milp_scaling")
        .str("problem", "min_cyc_faults")
        .int("edges", edges as u64)
        .str("variant", variant)
        .int("seed", seed)
        .num("wall_ms", wall_ms)
        .num("objective", out.objective)
        .int("nodes", out.stats.nodes as u64)
        .int("pivots", out.stats.simplex_iters as u64)
        .int("truncated", u64::from(out.stats.truncated))
        .int("faults_injected", r.faults_injected as u64)
        .int("unstable_updates", r.unstable_updates as u64)
        .int("singular_refactors", r.singular_refactors as u64)
        .int("cycling_suspected", r.cycling_suspected as u64)
        .int("residual_drift", r.residual_drift as u64)
        .int("pivot_budget", r.pivot_budget as u64)
        .int("time_budget", r.time_budget as u64)
        .int("ft_retries", r.ft_retries as u64)
        .int("recovery_forced_refactors", r.forced_refactors as u64)
        .int("product_form_switches", r.product_form_switches as u64)
        .int("cold_rebuilds", r.cold_rebuilds as u64)
        .int("bland_restarts", r.bland_restarts as u64)
        .int("dense_oracle_solves", r.dense_oracle_solves as u64);
    FaultMeasurement {
        record,
        wall_ms,
        objective: out.objective,
        truncated: out.stats.truncated,
        recovery: r.clone(),
    }
}

/// The self-healing A/B: `MIN_CYC(1)` on every bench instance, clean vs a
/// fixed-seed fault-injected twin. Records (including every recovery
/// counter) are written to `BENCH_milp.json` **before** the checks, so a
/// disagreement fails loudly with the evidence on disk. The contract:
/// the injected twin proves the same objective and the same completion
/// verdict as the clean run, the plan actually fires (`faults_injected`
/// > 0), and `faults: None` stays inert (zero injections).
fn fault_comparison(_c: &mut Criterion) {
    let seed: u64 = 0xDAC_2009;
    let mut records = Vec::new();
    let mut disagreements: Vec<String> = Vec::new();
    for &edges in &[20usize, 40] {
        let g = instance(edges);
        let clean = measure_faults(&g, edges, None, seed);
        let faulted = measure_faults(&g, edges, Some(FaultPlan::seeded(seed)), seed);
        println!(
            "fault comparison: min_cyc {edges} edges: clean {:.1} ms obj {}{} vs \
             faulted {:.1} ms obj {}{} ({} faults injected, recovery {:?})",
            clean.wall_ms,
            clean.objective,
            if clean.truncated { " (truncated)" } else { "" },
            faulted.wall_ms,
            faulted.objective,
            if faulted.truncated {
                " (truncated)"
            } else {
                ""
            },
            faulted.recovery.faults_injected,
            faulted.recovery,
        );
        records.push(clean.record.clone());
        records.push(faulted.record.clone());
        if clean.recovery.faults_injected != 0 {
            disagreements.push(format!(
                "min_cyc {edges} edges: clean run reports {} injected faults — \
                 `faults: None` is not inert",
                clean.recovery.faults_injected
            ));
        }
        if faulted.recovery.faults_injected == 0 {
            disagreements.push(format!(
                "min_cyc {edges} edges: no fault fired — the seeded plan is miscalibrated"
            ));
        }
        if (clean.objective - faulted.objective).abs() > 1e-7 * clean.objective.abs().max(1.0) {
            disagreements.push(format!(
                "min_cyc {edges} edges: clean {} vs fault-injected {} — the ladder \
                 let a corrupted solve change the optimum",
                clean.objective, faulted.objective
            ));
        }
        if clean.truncated != faulted.truncated {
            disagreements.push(format!(
                "min_cyc {edges} edges: completion verdicts diverge under faults \
                 (clean truncated={}, faulted truncated={})",
                clean.truncated, faulted.truncated
            ));
        }
    }
    append(&records);
    assert!(
        disagreements.is_empty(),
        "fault-injection regression (records already in BENCH_milp.json):\n{}",
        disagreements.join("\n")
    );
}

/// One parallel-search measurement: the fixed 1000-node-cap best-bound
/// `MAX_THR` run at a given worker count. Each configuration is run
/// three times and the fastest wall clock kept (the speedup ratio is
/// the headline number, so per-run noise must not fake or hide a
/// regression); the objective must be identical across repetitions.
struct ParallelMeasurement {
    record: JsonRecord,
    wall_ms: f64,
    objective: f64,
    truncated: bool,
    nodes: usize,
    queue_peak: usize,
}

fn measure_parallel(
    g: &Rrg,
    edges: usize,
    workers: usize,
    disagreements: &mut Vec<String>,
) -> ParallelMeasurement {
    let mut opts = CoreOptions::fast();
    opts.solver.time_limit = None; // deterministic budget: node cap only
    opts.solver.max_nodes = 1000;
    opts.solver.node_order = NodeOrder::BestBound;
    opts.solver.factor = FactorKind::Sparse;
    opts.solver.workers = workers;
    let mut wall_ms = f64::INFINITY;
    let mut out: Option<rr_core::formulation::OptOutcome> = None;
    for _ in 0..3 {
        let t0 = Instant::now();
        let o = formulation::max_thr(g, g.max_delay(), &opts).expect("MAX_THR solves");
        wall_ms = wall_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        if let Some(prev) = &out {
            if (prev.objective - o.objective).abs() > 1e-7 * prev.objective.abs().max(1.0) {
                disagreements.push(format!(
                    "max_thr {edges} edges, {workers} workers: repeated runs disagree \
                     ({} vs {})",
                    prev.objective, o.objective
                ));
            }
        }
        out = Some(o);
    }
    let out = out.unwrap();
    let record = JsonRecord::new("milp_scaling")
        .str("problem", "max_thr_parallel")
        .int("edges", edges as u64)
        .int("workers", workers as u64)
        .int("node_cap", 1000)
        .str("order", "best_bound")
        .num("wall_ms", wall_ms)
        .num("objective", out.objective)
        .int("nodes", out.stats.nodes as u64)
        .int("pivots", out.stats.simplex_iters as u64)
        .int("queue_peak", out.stats.queue_peak as u64)
        .int("truncated", u64::from(out.stats.truncated));
    ParallelMeasurement {
        record,
        wall_ms,
        objective: out.objective,
        truncated: out.stats.truncated,
        nodes: out.stats.nodes,
        queue_peak: out.stats.queue_peak,
    }
}

/// The parallel-search scaling arm: the 40-edge `MAX_THR` bench instance
/// under the fixed 1000-node best-bound cap at 1, 2 and 4 workers.
/// Wall time, node count and queue peak per worker count go into
/// `BENCH_milp.json` together with a summary carrying the speedups and
/// the host's CPU count (wall-clock speedup is only attainable when the
/// host grants at least as many CPUs as workers — on a single-CPU
/// runner the interesting trajectory is the *overhead* of the parallel
/// machinery, which should stay near ×1). The run fails loudly — after
/// the records are on disk — if any worker count reaches a different
/// final objective or completion verdict than the serial run (schedule
/// independence is the determinism contract of the parallel search).
fn parallel_comparison(_c: &mut Criterion) {
    let edges = 40usize;
    let g = instance(edges);
    let mut records = Vec::new();
    let mut disagreements: Vec<String> = Vec::new();
    let runs: Vec<(usize, ParallelMeasurement)> = [1usize, 2, 4]
        .iter()
        .map(|&w| (w, measure_parallel(&g, edges, w, &mut disagreements)))
        .collect();
    let serial = &runs[0].1;
    for (workers, m) in &runs {
        println!(
            "parallel comparison: max_thr {edges} edges, {workers} worker(s): \
             {:.1} ms, {} nodes, queue peak {}, objective {}{}",
            m.wall_ms,
            m.nodes,
            m.queue_peak,
            m.objective,
            if m.truncated { " (truncated)" } else { "" }
        );
        records.push(m.record.clone());
        if (m.objective - serial.objective).abs() > 1e-7 * serial.objective.abs().max(1.0) {
            disagreements.push(format!(
                "max_thr {edges} edges: {workers} workers found {} vs serial {} — \
                 the parallel search changed the answer",
                m.objective, serial.objective
            ));
        }
        if m.truncated != serial.truncated {
            disagreements.push(format!(
                "max_thr {edges} edges: completion verdicts diverge at {workers} workers \
                 (serial truncated={}, parallel truncated={})",
                serial.truncated, m.truncated
            ));
        }
    }
    let two = &runs[1].1;
    let four = &runs[2].1;
    let speedup_x2 = serial.wall_ms / two.wall_ms.max(1e-9);
    let speedup_x4 = serial.wall_ms / four.wall_ms.max(1e-9);
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "parallel comparison: speedup ×{speedup_x2:.2} at 2 workers, \
         ×{speedup_x4:.2} at 4 workers over the serial search \
         ({host_cpus} host CPU(s){})",
        if host_cpus < 4 {
            " — speedup bounded by the host, the gate here is agreement + overhead"
        } else {
            ""
        }
    );
    records.push(
        JsonRecord::new("parallel_scaling_summary")
            .int("edges", edges as u64)
            .int("node_cap", 1000)
            .int("host_cpus", host_cpus as u64)
            .num("serial_ms", serial.wall_ms)
            .num("two_workers_ms", two.wall_ms)
            .num("four_workers_ms", four.wall_ms)
            .num("speedup_x2", speedup_x2)
            .num("speedup_x4", speedup_x4)
            .num("objective", serial.objective)
            .int("truncated", u64::from(serial.truncated)),
    );
    append(&records);
    assert!(
        disagreements.is_empty(),
        "parallel-search divergence (records already in BENCH_milp.json):\n{}",
        disagreements.join("\n")
    );
}

/// A retiming-lag MILP in the deleted legacy backend's model class: the
/// lags `r_i` are **fully free integers** (split-pair columns in
/// standard form, exactly the paper's retiming variables) with ring
/// difference rows at fractional offsets and knapsack coupling rows
/// breaking total unimodularity, plus one **mirrored** capacity variable
/// (upper bound only, no lower bound). Before PR 10 this instance
/// routed to the rebuild-per-node `LegacyBackend`; now it branches on
/// the warm revised path like every other model.
///
/// `n` must be a multiple of 3: the ring rows integer-tighten to
/// difference caps cycling through {−1, 0, +1}, and any other `n` makes
/// their cyclic sum negative — an instance that is LP-feasible but
/// integer-infeasible, which no branch & bound can *prove* when the
/// lags are free (the infeasibility is invariant under shifting all
/// lags, so the unbounded boxes never exhaust).
fn free_lag_retiming_milp(n: usize, rows: usize) -> Model {
    assert!(n.is_multiple_of(3), "see the doc comment: n % 3 == 0");
    let mut m = Model::new(Sense::Minimize);
    let lags: Vec<_> = (0..n)
        .map(|i| m.add_integer(format!("r{i}"), f64::NEG_INFINITY, f64::INFINITY))
        .collect();
    let cap = m.add_integer("cap", f64::NEG_INFINITY, n as f64 / 2.0 + 0.7);
    let mut obj = LinExpr::new();
    for (i, &v) in lags.iter().enumerate() {
        obj += ((i % 4 + 1) as f64) * v;
    }
    obj += -2.0 * cap;
    m.set_objective(obj);
    for i in 0..n {
        let j = (i + 1) % n;
        m.add_constraint(lags[i] - lags[j], cmp::LE, ((i % 3) as f64) - 0.5);
    }
    for r in 0..rows {
        let mut row = LinExpr::new();
        for (i, &v) in lags.iter().enumerate() {
            row += (((i + r) % 5 + 1) as f64) * v;
        }
        m.add_constraint(row, cmp::GE, 2.5 * n as f64 + r as f64);
    }
    // The mirrored capacity rides under the total lag mass, so its
    // branch-and-bound boxes interact with the free split pairs.
    let mut total = LinExpr::new();
    for &v in &lags {
        total += 1.0 * v;
    }
    m.add_constraint(total - cap, cmp::GE, 0.3);
    m
}

/// One warm-vs-rebuild measurement on a mirrored/free-integer instance.
struct MirroredMeasurement {
    record: JsonRecord,
    wall_ms: f64,
    objective: f64,
    pivots: usize,
    nodes: usize,
    cold_solves: usize,
    truncated: bool,
}

fn measure_mirrored(name: &str, m: &Model, warm: bool) -> MirroredMeasurement {
    let opts = SolverOptions {
        max_nodes: 50_000,
        warm_start: warm,
        ..SolverOptions::default()
    };
    let t0 = Instant::now();
    let (sol, stats) = solve_with_stats(m, &opts).expect("retiming-lag MILP solves");
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let record = JsonRecord::new("milp_scaling")
        .str("problem", "mirrored_free_lags")
        .str("instance", name)
        .str("variant", if warm { "warm" } else { "rebuild_proxy" })
        .num("wall_ms", wall_ms)
        .num("objective", sol.objective)
        .int("nodes", stats.nodes as u64)
        .int("pivots", stats.simplex_iters as u64)
        .int("warm_solves", stats.warm_solves as u64)
        .int("cold_solves", stats.cold_solves as u64)
        .int("truncated", u64::from(stats.truncated));
    MirroredMeasurement {
        record,
        wall_ms,
        objective: sol.objective,
        pivots: stats.simplex_iters,
        nodes: stats.nodes,
        cold_solves: stats.cold_solves,
        truncated: stats.truncated,
    }
}

/// The mirrored/free-integer A/B — the PR 10 backend-unification perf
/// contract: retiming-lag instances whose integers are fully free
/// (split-pair) or mirrored now branch warm, and warm-starting must
/// beat solving every node from scratch. The baseline is the same warm
/// backend with `warm_start: false` — a faithful cost proxy for the
/// deleted `LegacyBackend`, which rebuilt and cold-solved a dense
/// tableau at every node (the proxy is *generous* to the legacy side:
/// it at least keeps the revised kernel). Records land in
/// `BENCH_milp.json` before the assertions, so a regression fails
/// loudly with the evidence on disk. The contract: identical objectives,
/// `cold_solves == 1` on the warm run, and **strictly fewer pivots**
/// than the rebuild proxy on every instance.
fn mirrored_comparison(_c: &mut Criterion) {
    let mut records = Vec::new();
    let mut regressions: Vec<String> = Vec::new();
    let cases: [(&str, Model); 2] = [
        ("lags12", free_lag_retiming_milp(12, 6)),
        ("lags15", free_lag_retiming_milp(15, 7)),
    ];
    for (name, m) in &cases {
        let warm = measure_mirrored(name, m, true);
        let rebuild = measure_mirrored(name, m, false);
        println!(
            "mirrored comparison: {name}: warm {:.1} ms obj {} in {} pivots / {} nodes \
             ({} cold){} vs rebuild proxy {:.1} ms obj {} in {} pivots / {} nodes ({} cold){}",
            warm.wall_ms,
            warm.objective,
            warm.pivots,
            warm.nodes,
            warm.cold_solves,
            if warm.truncated { " (truncated)" } else { "" },
            rebuild.wall_ms,
            rebuild.objective,
            rebuild.pivots,
            rebuild.nodes,
            rebuild.cold_solves,
            if rebuild.truncated {
                " (truncated)"
            } else {
                ""
            },
        );
        records.push(warm.record.clone());
        records.push(rebuild.record.clone());
        if warm.truncated || rebuild.truncated {
            regressions.push(format!(
                "{name}: run truncated at the 50k-node cap — the instance no longer closes"
            ));
            continue;
        }
        if (warm.objective - rebuild.objective).abs() > 1e-7 * warm.objective.abs().max(1.0) {
            regressions.push(format!(
                "{name}: warm {} vs rebuild proxy {} — the box translation changed the optimum",
                warm.objective, rebuild.objective
            ));
        }
        if warm.cold_solves != 1 {
            regressions.push(format!(
                "{name}: warm run took {} cold solves — mirrored/free boxes are not \
                 warm-starting",
                warm.cold_solves
            ));
        }
        if warm.pivots >= rebuild.pivots {
            regressions.push(format!(
                "{name}: warm path took {} pivots, rebuild proxy {} — warm-starting \
                 mirrored/free integers is not paying for itself",
                warm.pivots, rebuild.pivots
            ));
        }
    }
    append(&records);
    assert!(
        regressions.is_empty(),
        "mirrored/free-integer regression (records already in BENCH_milp.json):\n{}",
        regressions.join("\n")
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_lp_scaling, bench_milp_scaling, kernel_comparison, ordering_comparison,
        branching_comparison, pricing_comparison, update_comparison, fault_comparison,
        parallel_comparison, mirrored_comparison
}
criterion_main!(benches);
