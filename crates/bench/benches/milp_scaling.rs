//! MILP/LP scaling bench — the reproduction-side counterpart of the
//! paper's §6 remark that "the proposed MILPs are difficult to solve
//! exactly for circuit graphs with more than one thousand edges".
//!
//! Measures, as the random-graph size grows:
//! * the LP throughput-bound solve (pure simplex),
//! * the `MAX_THR` MILP at the min-delay cycle time (simplex + B&B).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use rr_core::{formulation, CoreOptions};
use rr_rrg::generate::GeneratorParams;
use rr_tgmg::{lp_bound, skeleton::tgmg_of};

fn bench_lp_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("lp_bound_scaling");
    group.sample_size(10);
    for &edges in &[20usize, 60, 120, 240] {
        let nodes = edges / 2;
        let early = (nodes / 8).max(1);
        let p = GeneratorParams::paper_defaults(nodes - early, early, edges);
        let g = p.generate(42);
        let t = tgmg_of(&g);
        group.bench_with_input(BenchmarkId::from_parameter(edges), &t, |b, t| {
            b.iter(|| lp_bound::throughput_upper_bound(black_box(t)).unwrap())
        });
    }
    group.finish();
}

fn bench_milp_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("max_thr_scaling");
    group.sample_size(10);
    for &edges in &[20usize, 40] {
        let nodes = edges / 2;
        let early = (nodes / 8).max(1);
        let p = GeneratorParams::paper_defaults(nodes - early, early, edges);
        let g = p.generate(42);
        let opts = CoreOptions::fast();
        group.bench_with_input(BenchmarkId::from_parameter(edges), &g, |b, g| {
            b.iter(|| formulation::max_thr(black_box(g), g.max_delay(), &opts).unwrap())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_lp_scaling, bench_milp_scaling
}
criterion_main!(benches);
