//! MILP/LP scaling bench — the reproduction-side counterpart of the
//! paper's §6 remark that "the proposed MILPs are difficult to solve
//! exactly for circuit graphs with more than one thousand edges".
//!
//! Measures, as the random-graph size grows:
//! * the LP throughput-bound solve (pure simplex),
//! * the `MAX_THR` MILP at the min-delay cycle time (simplex + B&B),
//!
//! and — the perf contract of the revised-simplex kernel — an explicit
//! **kernel A/B comparison**: every instance is solved once with the
//! production kernel (revised simplex, warm-started branch & bound) and
//! once with the dense-tableau oracle (cold restarts), in the same run.
//! Wall time, simplex pivots and node counts of both are appended to
//! `BENCH_milp.json` (see `rr_bench::bench_log`) so the speedup is
//! tracked across PRs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Instant;

use rr_bench::bench_log::{append, JsonRecord};
use rr_core::{formulation, CoreOptions};
use rr_milp::Kernel;
use rr_rrg::generate::GeneratorParams;
use rr_rrg::Rrg;
use rr_tgmg::{lp_bound, skeleton::tgmg_of};

fn instance(edges: usize) -> Rrg {
    let nodes = edges / 2;
    let early = (nodes / 8).max(1);
    let p = GeneratorParams::paper_defaults(nodes - early, early, edges);
    p.generate(42)
}

fn bench_lp_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("lp_bound_scaling");
    group.sample_size(10);
    for &edges in &[20usize, 60, 120, 240] {
        let t = tgmg_of(&instance(edges));
        group.bench_with_input(BenchmarkId::from_parameter(edges), &t, |b, t| {
            b.iter(|| lp_bound::throughput_upper_bound(black_box(t)).unwrap())
        });
    }
    group.finish();
}

fn bench_milp_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("max_thr_scaling");
    group.sample_size(10);
    for &edges in &[20usize, 40] {
        let g = instance(edges);
        let opts = CoreOptions::fast();
        group.bench_with_input(BenchmarkId::from_parameter(edges), &g, |b, g| {
            b.iter(|| formulation::max_thr(black_box(g), g.max_delay(), &opts).unwrap())
        });
    }
    group.finish();
}

/// Solves `MAX_THR` once with explicit kernel options and returns a
/// filled record plus the wall time.
fn measure_milp(
    g: &Rrg,
    edges: usize,
    kernel: Kernel,
    warm: bool,
) -> (JsonRecord, f64, f64, bool) {
    let mut opts = CoreOptions::fast();
    opts.solver.kernel = kernel;
    opts.solver.warm_start = warm;
    let t0 = Instant::now();
    let out = formulation::max_thr(g, g.max_delay(), &opts).expect("MAX_THR solves");
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let label = match kernel {
        Kernel::Revised => {
            if warm {
                "revised_warm"
            } else {
                "revised_cold"
            }
        }
        Kernel::DenseTableau => "dense_oracle",
    };
    let record = JsonRecord::new("milp_scaling")
        .str("problem", "max_thr")
        .int("edges", edges as u64)
        .str("kernel", label)
        .num("wall_ms", wall_ms)
        .num("objective", out.objective)
        .int("nodes", out.stats.nodes as u64)
        .int("pivots", out.stats.simplex_iters as u64)
        .int("warm_solves", out.stats.warm_solves as u64)
        .int("cold_solves", out.stats.cold_solves as u64)
        .int("truncated", u64::from(out.stats.truncated));
    (record, wall_ms, out.objective, out.stats.truncated)
}

/// Solves the LP throughput bound once with an explicit kernel.
fn measure_lp(g: &Rrg, edges: usize, kernel: Kernel) -> (JsonRecord, f64) {
    let mut solver = rr_milp::SolverOptions::default();
    solver.kernel = kernel;
    let t = tgmg_of(g);
    let t0 = Instant::now();
    let (bound, pivots) =
        lp_bound::throughput_upper_bound_counted(&t, &solver).expect("LP bound solves");
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let label = match kernel {
        Kernel::Revised => "revised",
        Kernel::DenseTableau => "dense_oracle",
    };
    let record = JsonRecord::new("milp_scaling")
        .str("problem", "lp_bound")
        .int("edges", edges as u64)
        .str("kernel", label)
        .num("wall_ms", wall_ms)
        .num("objective", bound)
        .int("pivots", pivots as u64);
    (record, wall_ms)
}

/// The A/B pass: both kernels on every instance, speedup recorded for
/// the largest MILP (the acceptance metric of the revised-kernel PR).
fn kernel_comparison(_c: &mut Criterion) {
    let mut records = Vec::new();
    for &edges in &[60usize, 240] {
        let g = instance(edges);
        let (rec, _) = measure_lp(&g, edges, Kernel::Revised);
        records.push(rec);
        let (rec, _) = measure_lp(&g, edges, Kernel::DenseTableau);
        records.push(rec);
    }
    let mut largest: Option<(usize, f64, f64, f64, f64, bool)> = None;
    for &edges in &[20usize, 40] {
        let g = instance(edges);
        let (rec, warm_ms, warm_obj, warm_trunc) = measure_milp(&g, edges, Kernel::Revised, true);
        records.push(rec);
        let (rec, _, _, _) = measure_milp(&g, edges, Kernel::Revised, false);
        records.push(rec);
        let (rec, dense_ms, dense_obj, dense_trunc) =
            measure_milp(&g, edges, Kernel::DenseTableau, false);
        records.push(rec);
        largest = Some((
            edges,
            warm_ms,
            dense_ms,
            warm_obj,
            dense_obj,
            warm_trunc || dense_trunc,
        ));
    }
    if let Some((edges, warm_ms, dense_ms, warm_obj, dense_obj, truncated)) = largest {
        let speedup = dense_ms / warm_ms.max(1e-9);
        println!(
            "kernel comparison: largest MAX_THR instance ({edges} edges) \
             revised+warm {warm_ms:.1} ms vs dense oracle {dense_ms:.1} ms \
             → speedup {speedup:.2}×{}",
            if truncated {
                "  (budget-truncated: same node/time caps, incumbents may differ)"
            } else {
                ""
            }
        );
        records.push(
            JsonRecord::new("milp_scaling_summary")
                .int("largest_edges", edges as u64)
                .num("revised_warm_ms", warm_ms)
                .num("dense_oracle_ms", dense_ms)
                .num("speedup", speedup)
                .num("revised_warm_objective", warm_obj)
                .num("dense_oracle_objective", dense_obj)
                .int("truncated", u64::from(truncated)),
        );
    }
    append(&records);
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_lp_scaling, bench_milp_scaling, kernel_comparison
}
criterion_main!(benches);
