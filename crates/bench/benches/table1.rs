//! Criterion bench for the Table-1 pipeline pieces on the s526 profile:
//! the two MILPs of one sweep step and the per-configuration evaluation.
//! (The full table is produced by the `table1` binary; benching it whole
//! would just measure the solver time limit.)

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use rr_core::{evaluate::evaluate_config, formulation, CoreOptions};
use rr_rrg::{iscas::IscasProfile, Config};

fn bench_s526_components(c: &mut Criterion) {
    let profile = IscasProfile::by_name("s526").unwrap();
    let g = profile.generate(2009);
    let mut opts = CoreOptions::fast();
    opts.solver.time_limit = Some(std::time::Duration::from_secs(3));
    let mut group = c.benchmark_group("table1_s526");
    group.sample_size(10);

    group.bench_function("max_thr_at_min_delay", |b| {
        b.iter(|| formulation::max_thr(black_box(&g), g.max_delay(), &opts).unwrap())
    });
    group.bench_function("min_cyc_at_unit_throughput", |b| {
        b.iter(|| formulation::min_cyc(black_box(&g), 1.0, &opts).unwrap())
    });
    group.bench_function("evaluate_initial_config", |b| {
        let cfg = Config::initial(&g);
        b.iter(|| evaluate_config(black_box(&g), &cfg, &opts).unwrap())
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_s526_components
}
criterion_main!(benches);
