//! Markov-chain scaling bench — the reproduction-side counterpart of the
//! paper's §1.4 remark that the Markov-chain analysis "does not scale in
//! general": it now does, up to bounded-capacity chains with 10⁴–10⁵
//! recurrent states, via the CSR chain + sparse iterative stationary
//! solver in `rr-markov`.
//!
//! Two criterion groups time the chain build + stationary solve for both
//! solvers on growing pipelined-figure instances, and — the perf contract
//! of the sparse engine — a **solver A/B comparison** solves every
//! instance once with the sparse Gauss–Seidel/power hybrid and once with
//! the dense Gauss–Jordan oracle in the same run. Wall times, state
//! counts and throughputs land in `BENCH_markov.json` (see
//! `rr_bench::bench_log`) so the speedup is tracked across PRs. On every
//! instance both solvers complete, their throughputs are asserted to
//! agree within 1e-7; the largest instance (>10,000 recurrent states) is
//! solved exactly by the sparse path while the dense oracle refuses it.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Instant;

use rr_bench::bench_log::{append_markov, JsonRecord};
use rr_elastic::Capacity;
use rr_markov::{exact_throughput_with, MarkovError, MarkovParams, MarkovResult, StationarySolver};
use rr_rrg::{figures, Rrg};

/// The A/B instance ladder: name, graph, capacity. Recurrent-class sizes
/// (at k = 2) run ≈ 12 → 419 → 1,091 → 2,496 → 9,701 → 28,520; the dense
/// oracle refuses everything past 2,000.
fn instances() -> Vec<(&'static str, Rrg, Capacity)> {
    vec![
        (
            "figure_1b_a0.5",
            figures::figure_1b(0.5),
            Capacity::Unbounded,
        ),
        ("figure_2_a0.9", figures::figure_2(0.9), Capacity::Unbounded),
        (
            "pipeline_2x2",
            figures::figure_1b_pipeline(&[2, 2], 0.6),
            Capacity::PerBuffer(2),
        ),
        (
            "pipeline_3+2",
            figures::figure_1b_pipeline(&[3, 2], 0.6),
            Capacity::PerBuffer(2),
        ),
        (
            "pipeline_3x3",
            figures::figure_1b_pipeline(&[3, 3], 0.6),
            Capacity::PerBuffer(2),
        ),
        (
            "pipeline_4x4",
            figures::figure_1b_pipeline(&[4, 4], 0.6),
            Capacity::PerBuffer(2),
        ),
        (
            "pipeline_5x5",
            figures::figure_1b_pipeline(&[5, 5], 0.6),
            Capacity::PerBuffer(2),
        ),
    ]
}

fn params(capacity: Capacity, solver: StationarySolver) -> MarkovParams {
    MarkovParams {
        capacity,
        max_states: 500_000,
        max_exact_solve: 500_000,
        solver,
        faults: None,
    }
}

fn capacity_label(c: Capacity) -> String {
    match c {
        Capacity::Unbounded => "unbounded".to_string(),
        Capacity::PerBuffer(k) => format!("per_buffer_{k}"),
    }
}

fn bench_sparse_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("markov_sparse_scaling");
    group.sample_size(10);
    for (name, g, cap) in instances() {
        if name.starts_with("figure") || name == "pipeline_5x5" {
            continue; // keep the timed set mid-sized
        }
        let p = params(cap, StationarySolver::SparseIterative);
        group.bench_with_input(BenchmarkId::from_parameter(name), &g, |b, g| {
            b.iter(|| exact_throughput_with(black_box(g), &p).unwrap().throughput)
        });
    }
    group.finish();
}

fn bench_dense_oracle(c: &mut Criterion) {
    let mut group = c.benchmark_group("markov_dense_oracle");
    group.sample_size(10);
    for (name, g, cap) in instances() {
        // Only the instances the oracle accepts (≤ 2,000 recurrent states).
        if !matches!(name, "pipeline_2x2" | "pipeline_3+2") {
            continue;
        }
        let p = params(cap, StationarySolver::DenseGaussJordan);
        group.bench_with_input(BenchmarkId::from_parameter(name), &g, |b, g| {
            b.iter(|| exact_throughput_with(black_box(g), &p).unwrap().throughput)
        });
    }
    group.finish();
}

/// One timed solve; `Ok` carries the result and wall time.
fn measure(
    g: &Rrg,
    cap: Capacity,
    solver: StationarySolver,
) -> Result<(MarkovResult, f64), MarkovError> {
    let p = params(cap, solver);
    let t0 = Instant::now();
    let r = exact_throughput_with(g, &p)?;
    Ok((r, t0.elapsed().as_secs_f64() * 1e3))
}

/// The A/B pass: both solvers on every instance, agreement asserted,
/// refusals and speedups recorded.
fn solver_comparison(_c: &mut Criterion) {
    let mut records = Vec::new();
    // (name, recurrent, sparse_ms, dense_ms) of the largest dual-solved
    // instance, and (name, recurrent, sparse_ms) of the largest overall.
    let mut ab: Option<(String, usize, f64, f64, f64)> = None;
    let mut largest: Option<(String, usize, f64, bool)> = None;
    for (name, g, cap) in instances() {
        let (sparse, sparse_ms) =
            measure(&g, cap, StationarySolver::SparseIterative).expect("sparse path solves");
        assert!(sparse.exact, "{name}: sparse fell back to power iteration");
        records.push(
            JsonRecord::new("markov_scaling")
                .str("instance", name)
                .str("capacity", &capacity_label(cap))
                .str("solver", "sparse_iterative")
                .int("states", sparse.states as u64)
                .int("recurrent_states", sparse.recurrent_states as u64)
                .num("wall_ms", sparse_ms)
                .num("throughput", sparse.throughput)
                .int("exact", u64::from(sparse.exact))
                .int("refused", 0),
        );
        match measure(&g, cap, StationarySolver::DenseGaussJordan) {
            Ok((dense, dense_ms)) => {
                let diff = (sparse.throughput - dense.throughput).abs();
                assert!(
                    diff < 1e-7,
                    "{name}: sparse {} vs dense {} differ by {diff:.3e}",
                    sparse.throughput,
                    dense.throughput
                );
                records.push(
                    JsonRecord::new("markov_scaling")
                        .str("instance", name)
                        .str("capacity", &capacity_label(cap))
                        .str("solver", "dense_oracle")
                        .int("states", dense.states as u64)
                        .int("recurrent_states", dense.recurrent_states as u64)
                        .num("wall_ms", dense_ms)
                        .num("throughput", dense.throughput)
                        .int("exact", u64::from(dense.exact))
                        .int("refused", 0),
                );
                if ab
                    .as_ref()
                    .is_none_or(|&(_, rec, ..)| sparse.recurrent_states > rec)
                {
                    ab = Some((
                        name.to_string(),
                        sparse.recurrent_states,
                        sparse_ms,
                        dense_ms,
                        diff,
                    ));
                }
            }
            Err(MarkovError::DenseSolveTooLarge { states, cap: limit }) => {
                records.push(
                    JsonRecord::new("markov_scaling")
                        .str("instance", name)
                        .str("capacity", &capacity_label(cap))
                        .str("solver", "dense_oracle")
                        .int("states", sparse.states as u64)
                        .int("recurrent_states", states as u64)
                        .int("dense_cap", limit as u64)
                        .int("exact", 0)
                        .int("refused", 1),
                );
            }
            Err(e) => panic!("{name}: dense oracle failed unexpectedly: {e}"),
        }
        if largest
            .as_ref()
            .is_none_or(|&(_, rec, ..)| sparse.recurrent_states > rec)
        {
            let refused = sparse.recurrent_states > rr_markov::DENSE_STATE_CAP;
            largest = Some((
                name.to_string(),
                sparse.recurrent_states,
                sparse_ms,
                refused,
            ));
        }
    }
    let (ab_name, ab_rec, ab_sparse_ms, ab_dense_ms, ab_diff) =
        ab.expect("at least one dual-solved instance");
    let (big_name, big_rec, big_sparse_ms, big_refused) = largest.expect("instances is non-empty");
    let speedup = ab_dense_ms / ab_sparse_ms.max(1e-9);
    println!(
        "solver comparison: largest dual-solved instance ({ab_name}, {ab_rec} recurrent states) \
         sparse {ab_sparse_ms:.1} ms vs dense oracle {ab_dense_ms:.1} ms → speedup {speedup:.2}×; \
         largest overall ({big_name}) {big_rec} recurrent states in {big_sparse_ms:.1} ms \
         (dense oracle {})",
        if big_refused { "refused" } else { "accepted" }
    );
    records.push(
        JsonRecord::new("markov_scaling_summary")
            .str("ab_instance", &ab_name)
            .int("ab_recurrent_states", ab_rec as u64)
            .num("sparse_wall_ms", ab_sparse_ms)
            .num("dense_wall_ms", ab_dense_ms)
            .num("speedup", speedup)
            .num("agreement_abs_diff", ab_diff)
            .str("largest_instance", &big_name)
            .int("largest_recurrent_states", big_rec as u64)
            .num("largest_sparse_wall_ms", big_sparse_ms)
            .int("dense_refused", u64::from(big_refused)),
    );
    append_markov(&records);
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_sparse_scaling, bench_dense_oracle, solver_comparison
}
criterion_main!(benches);
