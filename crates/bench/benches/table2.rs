//! Criterion bench for Table-2 pipeline rows on the two smallest
//! profiles — the end-to-end cost of one benchmark circuit (baseline
//! retiming + Pareto sweep + simulations). The full 18-row table is
//! produced by the `table2` binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use rr_core::report::evaluate_benchmark;
use rr_core::CoreOptions;
use rr_rrg::iscas::IscasProfile;

fn bench_small_rows(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_row");
    group.sample_size(10);
    for name in ["s208", "s838"] {
        let g = IscasProfile::by_name(name).unwrap().generate(2009);
        group.bench_with_input(BenchmarkId::from_parameter(name), &g, |b, g| {
            b.iter(|| evaluate_benchmark(black_box(name), g, &CoreOptions::fast()).unwrap())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_small_rows
}
criterion_main!(benches);
