//! Ablation: guard-selection semantics of early evaluation. The paper's
//! Markov values (0.491/0.719 for Figure 1(b)) pin down the *persistent*
//! policy — a drawn select value waits for its channel. Resampling every
//! blocked cycle is a tempting-but-wrong alternative (it skews measured
//! throughput upward); this bench quantifies both cost and skew.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use rr_rrg::figures;
use rr_tgmg::sim::{simulate, GuardPolicy, SimParams};
use rr_tgmg::skeleton::tgmg_of;

fn bench_guard_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("guard_policy_fig1b");
    group.sample_size(10);
    for (name, policy) in [
        ("persistent", GuardPolicy::Persistent),
        ("resample", GuardPolicy::ResampleEachCycle),
    ] {
        let t = tgmg_of(&figures::figure_1b(0.9));
        group.bench_with_input(BenchmarkId::from_parameter(name), &t, |b, t| {
            let params = SimParams {
                horizon: 10_000,
                warmup: 1_000,
                guard_policy: policy,
                ..Default::default()
            };
            b.iter(|| simulate(black_box(t), &params).unwrap().throughput)
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_guard_policies
}
criterion_main!(benches);
