//! Machine-readable perf records: `BENCH_milp.json` / `BENCH_markov.json`.
//!
//! Every perf-relevant harness (the `milp_scaling` / `markov_scaling`
//! benches, the `table1` / `table2` binaries) appends flat JSON records
//! here so per-kernel perf trajectories can be tracked across PRs without
//! parsing bench stdout. Each file is a JSON array with one record per
//! line:
//!
//! ```json
//! [
//! {"kind":"milp_scaling","edges":40,"kernel":"revised","wall_ms":12.3,...},
//! {"kind":"table1","circuit":"s526","wall_ms":823.1,...}
//! ]
//! ```
//!
//! `BENCH_markov.json` carries two record kinds, written by the
//! `markov_scaling` bench:
//!
//! * `"markov_scaling"` — one record per (instance, solver) pair:
//!   `instance` (str), `capacity` (str), `solver` (`"sparse_iterative"` or
//!   `"dense_oracle"`), `states`, `recurrent_states`, `wall_ms`,
//!   `throughput`, `exact` (0/1), and `refused` (1 when the dense oracle
//!   declined the class — `wall_ms`/`throughput` are then absent);
//! * `"markov_scaling_summary"` — the A/B headline: the largest instance
//!   both solvers completed (`ab_instance`, `ab_recurrent_states`,
//!   `sparse_wall_ms`, `dense_wall_ms`, `speedup`, `agreement_abs_diff`)
//!   and the largest sparse-only solve (`largest_instance`,
//!   `largest_recurrent_states`, `largest_sparse_wall_ms`,
//!   `dense_refused`).
//!
//! No serde in the container, so records are rendered by hand; the
//! format is deliberately flat (string / integer / float fields only).

use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;

/// One flat JSON object under construction.
#[derive(Debug, Clone, Default)]
pub struct JsonRecord {
    fields: Vec<(String, String)>,
}

impl JsonRecord {
    /// Starts a record with its `kind` discriminator.
    pub fn new(kind: &str) -> Self {
        JsonRecord::default().str("kind", kind)
    }

    /// Adds a string field (JSON-escaped).
    #[must_use]
    pub fn str(mut self, key: &str, value: &str) -> Self {
        self.fields.push((key.to_string(), escape(value)));
        self
    }

    /// Adds an integer field.
    #[must_use]
    pub fn int(mut self, key: &str, value: u64) -> Self {
        self.fields.push((key.to_string(), value.to_string()));
        self
    }

    /// Adds a float field (non-finite values become `null`).
    #[must_use]
    pub fn num(mut self, key: &str, value: f64) -> Self {
        let rendered = if value.is_finite() {
            format!("{value}")
        } else {
            "null".to_string()
        };
        self.fields.push((key.to_string(), rendered));
        self
    }

    /// Renders the record as a single-line JSON object.
    pub fn render(&self) -> String {
        let mut out = String::from("{");
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{}", escape(k), v);
        }
        out.push('}');
        out
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Where records for `file_name` go: the `env_var` override when set, or
/// `file_name` at the workspace root (`cargo bench` changes the working
/// directory to the package, so the path is anchored at compile time
/// instead).
pub fn bench_json_path_named(env_var: &str, file_name: &str) -> PathBuf {
    if let Some(p) = std::env::var_os(env_var) {
        return PathBuf::from(p);
    }
    let workspace_root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/bench has a workspace root two levels up");
    workspace_root.join(file_name)
}

/// The MILP perf log: `$BENCH_MILP_PATH` or `BENCH_milp.json`.
pub fn bench_json_path() -> PathBuf {
    bench_json_path_named("BENCH_MILP_PATH", "BENCH_milp.json")
}

/// The Markov perf log: `$BENCH_MARKOV_PATH` or `BENCH_markov.json`.
pub fn markov_json_path() -> PathBuf {
    bench_json_path_named("BENCH_MARKOV_PATH", "BENCH_markov.json")
}

/// Appends records to the MILP log ([`bench_json_path`]).
pub fn append(records: &[JsonRecord]) {
    append_to(&bench_json_path(), records);
}

/// Appends records to the Markov log ([`markov_json_path`]).
pub fn append_markov(records: &[JsonRecord]) {
    append_to(&markov_json_path(), records);
}

/// Appends records to the JSON array at `path`, creating it when absent
/// and replacing it when unparseable. I/O errors are reported to stderr,
/// never panicked on — perf logging must not fail a bench run.
///
/// The read-modify-write is **not** atomic: run the perf harnesses
/// sequentially (as `scripts/ci.sh` does); concurrent writers to the
/// same file are last-writer-wins.
pub fn append_to(path: &std::path::Path, records: &[JsonRecord]) {
    let mut lines: Vec<String> = match fs::read_to_string(path) {
        Ok(existing) if existing.trim_start().starts_with('[') => existing
            .lines()
            .map(str::trim)
            .filter(|l| l.starts_with('{'))
            .map(|l| l.trim_end_matches(',').to_string())
            .collect(),
        _ => Vec::new(),
    };
    lines.extend(records.iter().map(JsonRecord::render));
    let body = format!("[\n{}\n]\n", lines.join(",\n"));
    if let Err(e) = fs::write(path, body) {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        println!("perf records appended to {}", path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_renders_flat_json() {
        let r = JsonRecord::new("milp_scaling")
            .int("edges", 40)
            .num("wall_ms", 12.5)
            .num("speedup", f64::INFINITY)
            .str("kernel", "revised \"warm\"");
        assert_eq!(
            r.render(),
            r#"{"kind":"milp_scaling","edges":40,"wall_ms":12.5,"speedup":null,"kernel":"revised \"warm\""}"#
        );
    }

    #[test]
    fn append_round_trips_through_a_temp_file() {
        let dir = std::env::temp_dir().join(format!("bench_log_test_{}", std::process::id()));
        let _ = fs::create_dir_all(&dir);
        let path = dir.join("BENCH_milp.json");
        let _ = fs::remove_file(&path);
        std::env::set_var("BENCH_MILP_PATH", &path);
        append(&[JsonRecord::new("a").int("x", 1)]);
        append(&[JsonRecord::new("b").int("x", 2)]);
        let text = fs::read_to_string(&path).unwrap();
        std::env::remove_var("BENCH_MILP_PATH");
        assert!(text.starts_with("[\n"), "not an array: {text}");
        assert!(text.contains(r#"{"kind":"a","x":1}"#));
        assert!(text.contains(r#"{"kind":"b","x":2}"#));
        assert_eq!(text.matches('{').count(), 2);
    }
}
