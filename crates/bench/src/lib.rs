//! Shared harness utilities for the table/figure reproduction binaries.
//!
//! The binaries in `src/bin` regenerate the paper's artefacts:
//!
//! | binary    | artefact |
//! |-----------|----------|
//! | `figures` | Figures 1–2 and the §1.4 numbers (Markov, simulators, LP bound, optimizer rediscovery) |
//! | `table1`  | Table 1 — all non-dominated RCs of the s526 profile |
//! | `table2`  | Table 2 — the 18 ISCAS89 profiles with ξ*, ξ_nee, ξ_lp, ξ_sim, I% |
//!
//! Criterion benches live in `benches/` and measure the *performance* of
//! the reproduction itself (MILP scaling, simulator cost); the binaries
//! produce the *numbers*.

pub mod bench_log;

use std::time::Duration;

use rr_core::CoreOptions;
use rr_milp::SolverOptions;
use rr_rrg::generate::GeneratorParams;
use rr_rrg::iscas::IscasProfile;
use rr_rrg::Rrg;
use rr_tgmg::sim::SimParams;

/// The `milp_scaling` bench instance family (paper-default generator,
/// seed 42): the **single source of truth** for every consumer that
/// claims to measure "the N-edge bench instance" — the `milp_scaling`
/// bench records in `BENCH_milp.json`, the `factor_kernels` e2e
/// regression, and the `search_orders` golden/ordering suite all pin
/// trajectories of exactly this graph, so the definition must not fork.
pub fn milp_bench_instance(edges: usize) -> Rrg {
    let nodes = edges / 2;
    let early = (nodes / 8).max(1);
    GeneratorParams::paper_defaults(nodes - early, early, edges).generate(42)
}

/// Command-line options shared by the harness binaries.
#[derive(Debug, Clone)]
pub struct HarnessArgs {
    /// Base RNG seed for graph generation (`--seed N`).
    pub seed: u64,
    /// Edge cap for profile scaling (`--max-edges N`); `--full-size`
    /// disables scaling entirely. See EXPERIMENTS.md for why the default
    /// caps the four largest profiles.
    pub max_edges: Option<usize>,
    /// Per-MILP time limit in seconds (`--time-limit N`). The paper used
    /// 20-minute CPLEX timeouts.
    pub time_limit_secs: u64,
    /// Simulation horizon in cycles (`--horizon N`).
    pub horizon: u64,
    /// Restrict to named circuits (`--only s526,s27`).
    pub only: Vec<String>,
    /// Print per-configuration detail (`--verbose`).
    pub verbose: bool,
    /// Branch & bound worker threads per MILP (`--workers N`); `1`
    /// keeps the serial, bit-reproducible search.
    pub workers: usize,
    /// Per-MILP node budget (`--max-nodes N`), the deterministic
    /// alternative to the wall clock that the CI sweep gate uses.
    pub max_nodes: Option<usize>,
    /// Minimum number of circuits that must complete (prove optimality
    /// or reach the configured gap) for the run to exit 0
    /// (`--require-complete K`); `table2` enforces it.
    pub require_complete: Option<usize>,
}

impl Default for HarnessArgs {
    fn default() -> Self {
        HarnessArgs {
            seed: 2009, // DAC 2009
            max_edges: Some(150),
            time_limit_secs: 120,
            horizon: 30_000,
            only: Vec::new(),
            verbose: false,
            workers: 1,
            max_nodes: None,
            require_complete: None,
        }
    }
}

impl HarnessArgs {
    /// Parses `std::env::args()`-style arguments (program name already
    /// stripped).
    ///
    /// # Panics
    ///
    /// Panics on unknown flags or malformed values.
    pub fn parse(args: impl Iterator<Item = String>) -> HarnessArgs {
        let mut out = HarnessArgs::default();
        let mut it = args.peekable();
        while let Some(a) = it.next() {
            let mut take = |name: &str| -> String {
                it.next()
                    .unwrap_or_else(|| panic!("missing value for {name}"))
            };
            match a.as_str() {
                "--seed" => out.seed = take("--seed").parse().expect("seed must be an integer"),
                "--max-edges" => {
                    out.max_edges = Some(
                        take("--max-edges")
                            .parse()
                            .expect("max-edges must be an integer"),
                    )
                }
                "--full-size" => out.max_edges = None,
                "--time-limit" => {
                    out.time_limit_secs = take("--time-limit")
                        .parse()
                        .expect("time-limit must be seconds")
                }
                "--horizon" => {
                    out.horizon = take("--horizon")
                        .parse()
                        .expect("horizon must be an integer")
                }
                "--only" => out.only = take("--only").split(',').map(str::to_string).collect(),
                "--verbose" => out.verbose = true,
                "--workers" => {
                    out.workers = take("--workers")
                        .parse()
                        .expect("workers must be an integer")
                }
                "--max-nodes" => {
                    out.max_nodes = Some(
                        take("--max-nodes")
                            .parse()
                            .expect("max-nodes must be an integer"),
                    )
                }
                "--require-complete" => {
                    out.require_complete = Some(
                        take("--require-complete")
                            .parse()
                            .expect("require-complete must be an integer"),
                    )
                }
                "--help" | "-h" => {
                    eprintln!(
                        "options: --seed N --max-edges N --full-size --time-limit SECS \
                         --horizon CYCLES --only s526,s27 --workers N --max-nodes N \
                         --require-complete K --verbose"
                    );
                    std::process::exit(0);
                }
                other => panic!("unknown argument {other} (try --help)"),
            }
        }
        out
    }

    /// Core optimizer options implied by the arguments.
    pub fn core_options(&self) -> CoreOptions {
        CoreOptions {
            solver: SolverOptions {
                time_limit: Some(Duration::from_secs(self.time_limit_secs)),
                workers: self.workers,
                max_nodes: self.max_nodes.unwrap_or(SolverOptions::default().max_nodes),
                ..Default::default()
            },
            sim: SimParams {
                horizon: self.horizon,
                warmup: self.horizon / 10,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    /// The profile as actually run (scaled unless `--full-size`).
    pub fn effective_profile(&self, p: &IscasProfile) -> IscasProfile {
        match self.max_edges {
            Some(cap) => p.scaled(cap),
            None => *p,
        }
    }

    /// Whether a circuit is selected by `--only`.
    pub fn selected(&self, name: &str) -> bool {
        self.only.is_empty() || self.only.iter().any(|n| n == name)
    }

    /// The `--only` names that match nothing in `known`. A non-empty
    /// result means the sweep would silently run on an empty selection;
    /// binaries must fail loudly instead.
    pub fn unknown_only(&self, known: &[&str]) -> Vec<String> {
        self.only
            .iter()
            .filter(|n| !known.contains(&n.as_str()))
            .cloned()
            .collect()
    }
}

/// Runs items in parallel with up to `available_parallelism` workers,
/// preserving input order in the output.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    parallel_map_bounded(workers, items, f)
}

/// The shared bounded-parallelism fan-out: runs items on up to `workers`
/// scoped threads pulling from one work queue, preserving input order in
/// the output. Every table-row fan-out and the parallel-search test
/// harness go through here — the one place that owns the
/// `std::thread::scope` + work-queue idiom.
pub fn parallel_map_bounded<T, R, F>(workers: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let work: std::sync::Mutex<Vec<(usize, T)>> =
        std::sync::Mutex::new(items.into_iter().enumerate().rev().collect());
    let results_mx = std::sync::Mutex::new(&mut results);
    std::thread::scope(|s| {
        for _ in 0..workers.max(1).min(n.max(1)) {
            s.spawn(|| loop {
                let item = work.lock().unwrap().pop();
                let Some((i, item)) = item else {
                    return;
                };
                let r = f(item);
                results_mx.lock().unwrap()[i] = Some(r);
            });
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("worker finished every item"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> HarnessArgs {
        HarnessArgs::parse(list.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_and_flags() {
        let a = args(&[]);
        assert_eq!(a.seed, 2009);
        assert_eq!(a.max_edges, Some(150));
        let b = args(&[
            "--seed",
            "7",
            "--full-size",
            "--only",
            "s27,s526",
            "--verbose",
        ]);
        assert_eq!(b.seed, 7);
        assert_eq!(b.max_edges, None);
        assert!(b.selected("s27") && b.selected("s526") && !b.selected("s208"));
        assert!(b.verbose);
    }

    #[test]
    fn scaling_respects_full_size() {
        let p = IscasProfile::by_name("s1488").unwrap();
        let capped = args(&[]).effective_profile(&p);
        assert!(capped.edges <= 150);
        let full = args(&["--full-size"]).effective_profile(&p);
        assert_eq!(full.edges, 572);
    }

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map((0..32).collect::<Vec<_>>(), |x| x * 2);
        assert_eq!(out, (0..32).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_bounded_handles_edge_worker_counts() {
        for workers in [0, 1, 3, 64] {
            let out = parallel_map_bounded(workers, (0..17).collect::<Vec<_>>(), |x| x + 1);
            assert_eq!(out, (0..17).map(|x| x + 1).collect::<Vec<_>>());
        }
        assert!(parallel_map_bounded(4, Vec::<i32>::new(), |x| x).is_empty());
    }

    #[test]
    fn workers_flag_reaches_solver_options() {
        let a = args(&["--workers", "4"]);
        assert_eq!(a.workers, 4);
        assert_eq!(a.core_options().solver.workers, 4);
        assert_eq!(args(&[]).core_options().solver.workers, 1);
    }

    #[test]
    #[should_panic(expected = "unknown argument")]
    fn unknown_flag_panics() {
        args(&["--bogus"]);
    }

    #[test]
    fn node_budget_flags_reach_solver_options() {
        let a = args(&["--max-nodes", "5000", "--require-complete", "12"]);
        assert_eq!(a.max_nodes, Some(5000));
        assert_eq!(a.require_complete, Some(12));
        assert_eq!(a.core_options().solver.max_nodes, 5000);
        // Unset keeps the solver default rather than an accidental zero.
        let d = args(&[]);
        assert_eq!(
            d.core_options().solver.max_nodes,
            rr_milp::SolverOptions::default().max_nodes
        );
    }

    #[test]
    fn unknown_only_names_are_reported() {
        let a = args(&["--only", "s27,s9999,sXYZ"]);
        assert_eq!(a.unknown_only(&["s27", "s526"]), vec!["s9999", "sXYZ"]);
        assert!(args(&["--only", "s27"]).unknown_only(&["s27"]).is_empty());
        assert!(args(&[]).unknown_only(&["s27"]).is_empty());
    }
}
