//! Regenerates Table 1: all non-dominated retiming/recycling
//! configurations of the s526 profile, with cycle time, LP-bound and
//! simulated throughput, the bound error, and both effective cycle times.
//!
//! ```text
//! cargo run --release -p rr-bench --bin table1 [-- --seed N --only s400]
//! ```
//!
//! Absolute values differ from the paper (the graph attributes were
//! random there too); the qualitative shape — several Pareto points, the
//! LP picking a near-optimal one, err% growing as bubbles are inserted —
//! is the reproduction target (see EXPERIMENTS.md).

use rr_bench::bench_log::{append, JsonRecord};
use rr_bench::HarnessArgs;
use rr_core::report::evaluate_benchmark;
use rr_rrg::iscas::IscasProfile;

fn main() {
    let args = HarnessArgs::parse(std::env::args().skip(1));
    let name = args.only.first().map(String::as_str).unwrap_or("s526");
    let profile = IscasProfile::by_name(name)
        .unwrap_or_else(|| panic!("unknown circuit {name}; see Table 2 for names"));
    let effective = args.effective_profile(&profile);
    let g = effective.generate(args.seed);
    println!(
        "Table 1 — non-dominated configurations of {name} \
         (|N1|={}, |N2|={}, |E|={}, seed={})",
        g.num_simple(),
        g.num_early(),
        g.num_edges(),
        args.seed
    );
    if effective != profile {
        println!(
            "(scaled from |E|={} to fit the MILP budget; run with --full-size to override)",
            profile.edges
        );
    }
    println!();
    let t0 = std::time::Instant::now();
    let (row, table1) =
        evaluate_benchmark(name, &g, &args.core_options()).expect("benchmark pipeline succeeds");
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    print!("{table1}");
    println!(
        "\nξ* = {:.2}, ξ_nee = {:.2}, ξ_lp_min = {:.2}, ξ_sim_min = {:.2}, I% = {:.1}",
        row.xi_star, row.xi_nee, row.xi_lp_min, row.xi_sim_min, row.improvement_pct
    );
    append(&[JsonRecord::new("table1")
        .str("circuit", name)
        .int("edges", g.num_edges() as u64)
        .num("wall_ms", wall_ms)
        .int("milp_nodes", table1.outcome.total_nodes as u64)
        .int("pivots", table1.outcome.total_simplex_iters as u64)
        .num("xi_sim_min", row.xi_sim_min)]);
}
