//! Regenerates Table 2: the 18 ISCAS89-profile benchmarks with the
//! columns ξ* (before optimization), ξ_nee (best late-evaluation = min-
//! delay retiming), ξ_lp_min, ξ_sim_min and the improvement I%, plus the
//! paper's three observations.
//!
//! ```text
//! cargo run --release -p rr-bench --bin table2
//! cargo run --release -p rr-bench --bin table2 -- --full-size --time-limit 1200
//! cargo run --release -p rr-bench --bin table2 -- --only s27,s526 --verbose
//! ```
//!
//! By default profiles larger than 150 edges are scaled down (our from-
//! scratch MILP solver stands in for CPLEX; see EXPERIMENTS.md for the
//! deviation log). Circuits run in parallel across cores.

use rr_bench::bench_log::{append, JsonRecord};
use rr_bench::{parallel_map, HarnessArgs};
use rr_core::report::{evaluate_benchmark, Table2};
use rr_rrg::iscas::TABLE2;

fn main() {
    let args = HarnessArgs::parse(std::env::args().skip(1));
    let opts = args.core_options();

    // An unknown `--only` name used to produce a silently empty sweep
    // (exit 0, no rows); fail loudly instead.
    let known: Vec<&str> = TABLE2.iter().map(|p| p.name).collect();
    let unknown = args.unknown_only(&known);
    if !unknown.is_empty() {
        eprintln!(
            "error: unknown circuit(s) in --only: {} (known: {})",
            unknown.join(", "),
            known.join(", ")
        );
        std::process::exit(2);
    }

    let selected: Vec<_> = TABLE2
        .iter()
        .filter(|p| args.selected(p.name))
        .copied()
        .collect();
    println!(
        "Table 2 — {} circuits, seed {}, edge cap {:?}, MILP time limit {}s, node cap {:?}",
        selected.len(),
        args.seed,
        args.max_edges,
        args.time_limit_secs,
        args.max_nodes,
    );

    let results = parallel_map(selected, |profile| {
        let effective = args.effective_profile(&profile);
        let g = effective.generate(args.seed);
        let scaled = if effective != profile {
            format!(" (scaled from |E|={})", profile.edges)
        } else {
            String::new()
        };
        let edges = g.num_edges();
        let t0 = std::time::Instant::now();
        let res = evaluate_benchmark(profile.name, &g, &opts);
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        (profile.name, scaled, edges, wall_ms, res)
    });

    let total = results.len();
    let mut table = Table2::default();
    let mut records = Vec::new();
    let mut completed = 0usize;
    for (name, scaled, edges, wall_ms, res) in results {
        match res {
            Ok((row, table1)) => {
                if args.verbose {
                    println!("\n--- {name}{scaled} ---");
                    print!("{table1}");
                }
                // A circuit counts as complete when every MILP in its
                // sweep proved optimality (gap-tolerance proofs
                // included): the `(limit, n incidents)` annotations stay
                // per-row in the rendered table rather than aborting.
                if row.proven_optimal {
                    completed += 1;
                }
                records.push(
                    JsonRecord::new("table2")
                        .str("circuit", name)
                        .int("edges", edges as u64)
                        .num("wall_ms", wall_ms)
                        .int("milp_nodes", table1.outcome.total_nodes as u64)
                        .int("pivots", table1.outcome.total_simplex_iters as u64)
                        .num("xi_sim_min", row.xi_sim_min)
                        .int("proven", u64::from(row.proven_optimal))
                        .int("incidents", row.incidents as u64),
                );
                table.rows.push(row);
            }
            Err(e) => {
                eprintln!("{name}: failed: {e}");
                records.push(
                    JsonRecord::new("table2")
                        .str("circuit", name)
                        .int("edges", edges as u64)
                        .num("wall_ms", wall_ms)
                        .str("error", &e.to_string()),
                );
            }
        }
    }
    append(&records);
    println!();
    print!("{table}");
    println!(
        "(paper, full-size with CPLEX: average I% = 14.5, RC_lp_min = RC_min in >half \
         the cases, average err% = 12.5)"
    );
    println!("{completed}/{total} circuits completed (all MILPs proven within gap)");
    if let Some(required) = args.require_complete {
        if completed < required {
            eprintln!(
                "error: only {completed}/{total} circuits completed; --require-complete {required}"
            );
            std::process::exit(1);
        }
    }
}
