//! Regenerates the paper's motivating example: Figures 1(a), 1(b), 2 and
//! every §1.4 number — via four independent methods (exact Markov chain,
//! TGMG discrete-event simulation, cycle-accurate elastic machine, LP
//! bound), then lets the optimizer rediscover Figure 2 from Figure 1(a).
//!
//! ```text
//! cargo run --release -p rr-bench --bin figures
//! ```

use rr_bench::HarnessArgs;
use rr_core::{algorithm, CoreOptions};
use rr_elastic::{simulate as machine_sim, MachineParams};
use rr_markov::exact_throughput;
use rr_rrg::{cycle_time, figures};
use rr_tgmg::{lp_bound, sim as tgmg_sim, skeleton::tgmg_of};

fn row(name: &str, g: &rr_rrg::Rrg) {
    let tau = cycle_time::cycle_time(g).expect("figure graphs have finite cycle time");
    let tgmg = tgmg_of(g);
    let markov = exact_throughput(g).expect("figure chains are small");
    let tsim = tgmg_sim::simulate(&tgmg, &tgmg_sim::SimParams::default())
        .expect("figure TGMGs simulate")
        .throughput;
    let msim = machine_sim(g, &MachineParams::default())
        .expect("figure machines simulate")
        .throughput;
    let lp = lp_bound::throughput_upper_bound(&tgmg).expect("LP bound solves");
    println!(
        "{name:<16} τ={tau:>4.1}  Θ_markov={:.4}  Θ_tgmg={:.4}  Θ_machine={:.4}  Θ_lp={:.4}  ξ={:.3}",
        markov.throughput,
        tsim,
        msim,
        lp.min(1.0),
        tau / markov.throughput,
    );
}

fn main() {
    let args = HarnessArgs::parse(std::env::args().skip(1));
    println!("== Motivating example (paper §1.4) ==");
    println!("paper: Θ(fig1b, α=0.5) = 0.491, Θ(fig1b, α=0.9) = 0.719, Θ(fig2) = 1/(3−2α)\n");

    for &alpha in &[0.5, 0.9] {
        println!("-- α = {alpha} --");
        row("figure 1(a)", &figures::figure_1a(alpha));
        row(
            "figure 1(b) late",
            &figures::figure_1b(alpha).with_late_evaluation(),
        );
        row("figure 1(b)", &figures::figure_1b(alpha));
        row("figure 2", &figures::figure_2(alpha));
        println!(
            "closed form    Θ(fig2) = 1/(3−2α) = {:.4}\n",
            figures::figure_2_throughput(alpha)
        );
    }

    println!("== Θ(α) series (Figures 1(b) / 2 as plots) ==");
    println!(
        "{:>5} {:>12} {:>12} {:>12} {:>12}",
        "α", "fig1b_markov", "fig2_markov", "fig2_closed", "fig1b_late"
    );
    for i in 1..10 {
        let a = i as f64 / 10.0;
        let f1b = exact_throughput(&figures::figure_1b(a)).expect("small chain");
        let f2 = exact_throughput(&figures::figure_2(a)).expect("small chain");
        println!(
            "{a:>5.1} {:>12.4} {:>12.4} {:>12.4} {:>12.4}",
            f1b.throughput,
            f2.throughput,
            figures::figure_2_throughput(a),
            1.0 / 3.0,
        );
    }
    println!();

    println!("== Optimizer rediscovery (MIN_EFF_CYC on figure 1(a), α = 0.9) ==");
    let opts = CoreOptions {
        solver: args.core_options().solver,
        ..CoreOptions::default()
    };
    let g = figures::figure_1a(0.9);
    let out = algorithm::min_eff_cyc(&g, &opts).expect("sweep succeeds on the figure");
    for ev in &out.evaluations {
        println!(
            "  stored RC: τ={:>4.1}  Θ_lp={:.4}  Θ_sim={:.4}  ξ_lp={:.3}  ξ={:.3}",
            ev.tau, ev.theta_lp, ev.theta_sim, ev.xi_lp, ev.xi_sim
        );
    }
    let best = out.best_simulated().expect("nonempty sweep");
    println!(
        "best ξ = {:.3} (figure 2 achieves {:.3}); Δ to paper optimum: {:+.1}%",
        best.xi_sim,
        1.0 / figures::figure_2_throughput(0.9),
        (best.xi_sim - 1.0 / figures::figure_2_throughput(0.9))
            / (1.0 / figures::figure_2_throughput(0.9))
            * 100.0
    );
}
