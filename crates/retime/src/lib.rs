//! Classic Leiserson–Saxe retiming (Algorithmica '91), used as the
//! paper's baseline: `MIN_CYC(1)` — the best cycle time reachable without
//! recycling — equals the minimum period of ordinary retiming, and the
//! Table-2 column `ξ_nee` ("no early evaluation") is produced by it.
//!
//! Implementation: the textbook *W/D matrices* + feasibility route:
//!
//! 1. `W(u,v)` = minimum register count over `u→v` paths, `D(u,v)` =
//!    maximum path delay among those minimum-register paths (computed by
//!    lexicographic Floyd–Warshall);
//! 2. a period `c` is feasible iff the difference constraints
//!    `r(u) − r(v) ≤ w(e)` (legality) and `r(u) − r(v) ≤ W(u,v) − 1`
//!    for every pair with `D(u,v) > c` (timing) admit a solution
//!    (Bellman–Ford);
//! 3. binary search over the sorted distinct `D` values finds the minimum
//!    feasible period.
//!
//! In the elastic setting "registers" are elastic buffers; the returned
//! retiming vector moves tokens together with their EBs
//! ([`rr_rrg::Config::from_retiming_with_buffers`]), preserving Θ = 1 on
//! bubble-free graphs.

use std::error::Error;
use std::fmt;

use rr_rrg::{Config, Rrg};

/// Result of a minimum-period retiming.
#[derive(Debug, Clone, PartialEq)]
pub struct RetimingResult {
    /// The minimum feasible clock period.
    pub period: f64,
    /// A retiming vector achieving it.
    pub retiming: Vec<i64>,
}

impl RetimingResult {
    /// The configuration obtained by moving EBs (and their tokens) along
    /// the retiming vector.
    pub fn config(&self, g: &Rrg) -> Config {
        Config::from_retiming_with_buffers(g, &self.retiming)
    }
}

/// Retiming failures.
#[derive(Debug, Clone, PartialEq)]
pub enum RetimeError {
    /// The graph has a register-free directed cycle; no period is
    /// feasible.
    RegisterFreeCycle,
    /// The graph is empty.
    Empty,
}

impl fmt::Display for RetimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RetimeError::RegisterFreeCycle => {
                f.write_str("graph has a directed cycle with no registers")
            }
            RetimeError::Empty => f.write_str("graph has no nodes"),
        }
    }
}

impl Error for RetimeError {}

/// The W and D matrices of Leiserson–Saxe, with `None` for unreachable
/// pairs. `W[u][v]` is the minimum register count over all `u→v` paths
/// (diagonal entries describe proper cycles, not the empty path);
/// `D[u][v]` the maximum delay, endpoints included, among those paths.
pub type WdMatrices = (Vec<Vec<Option<i64>>>, Vec<Vec<f64>>);

/// Computes the W/D matrices with registers = the graph's buffer counts.
pub fn wd_matrices(g: &Rrg) -> WdMatrices {
    let n = g.num_nodes();
    // Lexicographic weights: minimise (registers, -delay_after_source).
    let mut w: Vec<Vec<Option<i64>>> = vec![vec![None; n]; n];
    let mut s: Vec<Vec<f64>> = vec![vec![f64::NEG_INFINITY; n]; n];
    for (_, e) in g.edges() {
        let (u, v) = (e.source().index(), e.target().index());
        let wt = e.buffers();
        let sd = g.node(e.target()).delay();
        let better = match w[u][v] {
            None => true,
            Some(curw) => wt < curw || (wt == curw && sd > s[u][v]),
        };
        if better {
            w[u][v] = Some(wt);
            s[u][v] = sd;
        }
    }
    for k in 0..n {
        for i in 0..n {
            let Some(wik) = w[i][k] else { continue };
            let sik = s[i][k];
            for j in 0..n {
                let Some(wkj) = w[k][j] else { continue };
                let cand_w = wik + wkj;
                let cand_s = sik + s[k][j];
                let better = match w[i][j] {
                    None => true,
                    Some(cur) => cand_w < cur || (cand_w == cur && cand_s > s[i][j]),
                };
                if better {
                    w[i][j] = Some(cand_w);
                    s[i][j] = cand_s;
                }
            }
        }
    }
    let d: Vec<Vec<f64>> = (0..n)
        .map(|u| {
            (0..n)
                .map(|v| {
                    if w[u][v].is_some() {
                        g.node(rr_rrg::NodeId(u)).delay() + s[u][v]
                    } else {
                        f64::NEG_INFINITY
                    }
                })
                .collect()
        })
        .collect();
    (w, d)
}

/// Tests whether clock period `c` is feasible and returns a witness
/// retiming vector if so.
pub fn feasible_retiming(g: &Rrg, c: f64) -> Option<Vec<i64>> {
    let (w, d) = wd_matrices(g);
    feasible_with_wd(g, &w, &d, c)
}

fn feasible_with_wd(g: &Rrg, w: &[Vec<Option<i64>>], d: &[Vec<f64>], c: f64) -> Option<Vec<i64>> {
    let n = g.num_nodes();
    // Difference constraints r(u) − r(v) ≤ b become edges v→u of weight b.
    let mut cons: Vec<(usize, usize, i64)> = Vec::new();
    for (_, e) in g.edges() {
        cons.push((e.target().index(), e.source().index(), e.buffers()));
    }
    for u in 0..n {
        for v in 0..n {
            if d[u][v] > c + 1e-9 {
                let Some(wuv) = w[u][v] else { continue };
                cons.push((v, u, wuv - 1));
            }
        }
    }
    // Bellman–Ford with a virtual source (all distances start at 0).
    let mut dist = vec![0i64; n];
    for pass in 0..=n {
        let mut changed = false;
        for &(from, to, b) in &cons {
            let cand = dist[from].saturating_add(b);
            if cand < dist[to] {
                dist[to] = cand;
                changed = true;
            }
        }
        if !changed {
            return Some(dist);
        }
        if pass == n {
            return None;
        }
    }
    unreachable!("loop always returns")
}

/// Minimum-period retiming (registers = buffer counts, tokens move along).
///
/// # Errors
///
/// [`RetimeError::Empty`] for empty graphs and
/// [`RetimeError::RegisterFreeCycle`] when some cycle carries no EB (no
/// period is feasible).
pub fn min_period_retiming(g: &Rrg) -> Result<RetimingResult, RetimeError> {
    if g.num_nodes() == 0 {
        return Err(RetimeError::Empty);
    }
    if rr_rrg::algo::find_nonpositive_cycle_with(g, |e| g.edge(e).buffers()).is_some() {
        // Zero-buffer cycle (buffer counts are nonnegative, so "≤ 0" means
        // "== 0" here).
        return Err(RetimeError::RegisterFreeCycle);
    }
    let (w, d) = wd_matrices(g);
    // Candidate periods: distinct D values no smaller than the largest
    // node delay.
    let beta_max = g.max_delay();
    let mut cands: Vec<f64> = d
        .iter()
        .flatten()
        .copied()
        .filter(|&x| x.is_finite() && x >= beta_max - 1e-12)
        .collect();
    cands.push(beta_max);
    cands.sort_by(f64::total_cmp);
    cands.dedup_by(|a, b| (*a - *b).abs() < 1e-12);

    // Binary search the smallest feasible candidate.
    let mut lo = 0usize;
    let mut hi = cands.len() - 1;
    let mut best: Option<(f64, Vec<i64>)> = None;
    // The largest candidate (the longest min-register path delay) is
    // always feasible for a live graph; still verify defensively.
    if feasible_with_wd(g, &w, &d, cands[hi]).is_none() {
        return Err(RetimeError::RegisterFreeCycle);
    }
    while lo <= hi {
        let mid = (lo + hi) / 2;
        match feasible_with_wd(g, &w, &d, cands[mid]) {
            Some(r) => {
                best = Some((cands[mid], r));
                if mid == 0 {
                    break;
                }
                hi = mid - 1;
            }
            None => {
                lo = mid + 1;
            }
        }
    }
    let (period, retiming) = best.expect("at least the maximum candidate is feasible");
    Ok(RetimingResult { period, retiming })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rr_rrg::{cycle_time, figures, RrgBuilder};

    #[test]
    fn figure_1a_min_period_is_three() {
        // "3 is minimal cycle time achievable by retiming" (§1.2).
        let g = figures::figure_1a(0.5);
        let r = min_period_retiming(&g).unwrap();
        assert_eq!(r.period, 3.0);
        // The witness really achieves it.
        let cfg = r.config(&g);
        let retimed = cfg.apply(&g).unwrap();
        assert!(cycle_time::cycle_time(&retimed).unwrap() <= 3.0);
    }

    #[test]
    fn chain_with_slack_registers_retimes_to_balance() {
        // a(2) → b(2) → c(2) → a with two registers on c→a: the optimum
        // spreads them, leaving one two-node combinational segment: τ = 4.
        let mut b = RrgBuilder::new();
        let na = b.add_simple("a", 2.0);
        let nb = b.add_simple("b", 2.0);
        let nc = b.add_simple("c", 2.0);
        b.add_edge(na, nb, 0, 0);
        b.add_edge(nb, nc, 0, 0);
        b.add_edge(nc, na, 2, 2);
        let g = b.build().unwrap();
        let r = min_period_retiming(&g).unwrap();
        assert_eq!(r.period, 4.0, "retiming {:?}", r.retiming);
        let retimed = r.config(&g).apply(&g).unwrap();
        assert!(cycle_time::cycle_time(&retimed).unwrap() <= 4.0);
    }

    #[test]
    fn already_optimal_graph_unchanged_period() {
        let mut b = RrgBuilder::new();
        let na = b.add_simple("a", 5.0);
        let nb = b.add_simple("b", 5.0);
        b.add_edge(na, nb, 1, 1);
        b.add_edge(nb, na, 1, 1);
        let g = b.build().unwrap();
        let r = min_period_retiming(&g).unwrap();
        assert_eq!(r.period, 5.0);
    }

    #[test]
    fn register_free_cycle_is_an_error() {
        // Construct directly (the builder would reject a dead cycle, so
        // put a token-free but *live-looking* cycle: tokens alone do not
        // help if buffers are absent — such graphs fail validation too,
        // so test through a valid graph whose buffers we strip).
        let g = figures::figure_1a(0.5);
        let mut stripped = g.clone();
        // Simulate by zeroing all buffer counts via a Config bypass: build
        // a new graph with zero buffers everywhere is invalid; instead
        // check the error path on a raw builder graph with a self-loop.
        let mut b = RrgBuilder::new();
        let a = b.add_simple("a", 1.0);
        let c = b.add_simple("c", 1.0);
        b.add_edge(a, c, 1, 1);
        b.add_edge(c, a, 1, 1);
        b.add_edge(a, a, 0, 0); // register-free self-loop… invalid RRG
        let err = b.build();
        assert!(err.is_err(), "builder rejects the dead self-loop");
        let _ = &mut stripped;
    }

    #[test]
    fn feasibility_is_monotone_in_period() {
        let g = figures::figure_1a(0.5);
        assert!(feasible_retiming(&g, 2.9).is_none());
        assert!(feasible_retiming(&g, 3.0).is_some());
        assert!(feasible_retiming(&g, 10.0).is_some());
    }

    #[test]
    fn wd_matrices_shapes_and_cycles() {
        let g = figures::figure_1a(0.5);
        let (w, d) = wd_matrices(&g);
        let n = g.num_nodes();
        assert_eq!(w.len(), n);
        // Diagonal entries are cycle weights: both cycles through m carry
        // tokens, min is the bottom cycle with 1 EB.
        let m = g.node_by_name("m").unwrap().index();
        assert_eq!(w[m][m], Some(1));
        // D over the bottom cycle counts F1+F2+F3 = 3 (m itself has β=0).
        assert!(d[m][m] >= 3.0 - 1e-12);
    }
}
