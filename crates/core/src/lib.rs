//! The paper's contribution: minimum-effective-cycle-time retiming and
//! recycling for elastic systems with early evaluation.
//!
//! Effective cycle time ξ = τ/Θ trades the clock period τ (shortened by
//! inserting bubbles — *recycling*) against the token throughput Θ
//! (lowered by those same bubbles, but less so when early-evaluation
//! nodes can fire before all inputs arrive). The optimization problem
//! (12) is a non-convex MIQP; the paper's heuristic — and this crate —
//! solves it by sweeping the Pareto frontier with two MILPs:
//!
//! * [`formulation::min_cyc`] — `MIN_CYC(x)`: minimum cycle time
//!   subject to Θ_lp ≥ 1/x (Lemma 2.1 path constraints + Lemma 3.2
//!   throughput constraints with x fixed);
//! * [`formulation::max_thr`] — `MAX_THR(τ)`: maximum LP
//!   throughput bound subject to cycle time ≤ τ;
//! * [`algorithm::min_eff_cyc`] — the `MIN_EFF_CYC`
//!   alternation of §4, which collects non-dominated configurations,
//!   evaluates each by simulation, and returns the best.
//!
//! The throughput constraints are re-derived rather than transcribed (the
//! printed (5)–(10) contain typos, see DESIGN.md §5): LP (4) is emitted
//! mechanically over the shared [`rr_tgmg::TgmgSkeleton`], with the
//! bilinear `x·r(·)` terms absorbed into the free σ potentials — which is
//! exactly why fixing τ or x yields an MILP.
//!
//! # Example
//!
//! ```
//! use rr_core::{algorithm, CoreOptions};
//! use rr_rrg::figures;
//!
//! // The optimizer must rediscover Figure 2 from Figure 1(a): cycle time
//! // 1 with throughput 1/(3−2α).
//! let g = figures::figure_1a(0.9);
//! let out = algorithm::min_eff_cyc(&g, &CoreOptions::default())?;
//! let best = out.best_simulated().expect("sweep found configurations");
//! assert!(best.xi_sim <= 3.0 * 0.9 / 0.719 + 0.1); // beats Figure 1(b)
//! # Ok::<(), rr_core::OptError>(())
//! ```

pub mod algorithm;
pub mod bounds;
pub mod evaluate;
pub mod formulation;
pub mod pareto;
pub mod report;

#[cfg(test)]
mod proptests;

pub use algorithm::{min_eff_cyc, MinEffCycOutcome};
pub use evaluate::{evaluate_config, RcEvaluation};
pub use formulation::{max_thr, min_cyc, OptError, OptOutcome};

use rr_milp::SolverOptions;
use rr_tgmg::sim::SimParams;

/// Options threading through the whole optimization pipeline.
#[derive(Debug, Clone)]
pub struct CoreOptions {
    /// Throughput step ε of `MIN_EFF_CYC` (paper: 0.01).
    pub epsilon: f64,
    /// MILP solver limits (the paper used a 20-minute CPLEX timeout).
    pub solver: SolverOptions,
    /// Simulation window for the exact-throughput evaluation of each
    /// stored configuration.
    pub sim: SimParams,
    /// Keep at most this many best configurations in the outcome (the
    /// paper's `k`); all non-dominated points are still evaluated.
    pub k: usize,
    /// Generate retiming cycle-sum cuts for `MAX_THR(τ)` (each cycle `C`
    /// needs at least `⌈D(C)/τ⌉` buffers). The cuts are valid for every
    /// integer point and are separated lazily inside branch & bound.
    pub cuts: bool,
}

impl Default for CoreOptions {
    fn default() -> Self {
        CoreOptions {
            epsilon: 0.01,
            solver: SolverOptions {
                time_limit: Some(std::time::Duration::from_secs(120)),
                // A 0.5 % proof gap: far below the ε = 0.01 sweep
                // granularity, far above what DFS needs to close exactly.
                gap_tol: 0.005,
                ..Default::default()
            },
            sim: SimParams::default(),
            k: 5,
            cuts: true,
        }
    }
}

impl CoreOptions {
    /// Fast options for tests: small simulation windows and tight solver
    /// budgets.
    pub fn fast() -> Self {
        CoreOptions {
            epsilon: 0.01,
            solver: SolverOptions {
                max_nodes: 2_000,
                time_limit: Some(std::time::Duration::from_secs(10)),
                gap_tol: 0.02,
                ..Default::default()
            },
            sim: SimParams::fast(0xC0FFEE),
            k: 5,
            cuts: true,
        }
    }
}
