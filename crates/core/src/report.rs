//! Paper-style reporting: Table 1 (all non-dominated RCs of one circuit)
//! and Table 2 (the benchmark suite with the late-evaluation baseline and
//! the improvement column).

use std::fmt;

use rr_rrg::{cycle_time, Rrg};

use crate::algorithm::{min_eff_cyc, MinEffCycOutcome};
use crate::formulation::OptError;
use crate::CoreOptions;

/// Table 1 for one circuit: every stored configuration with its measured
/// columns, plus the `RC_lp_min` / `RC_min` markers and Δ%.
#[derive(Debug, Clone)]
pub struct Table1 {
    /// Circuit name.
    pub name: String,
    /// The sweep outcome (rows in cycle-time order).
    pub outcome: MinEffCycOutcome,
}

impl fmt::Display for Table1 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<10} {:>9} {:>8} {:>8} {:>8} {:>10} {:>10}",
            "Name", "tau", "Th_lp", "Th", "err(%)", "xi_lp", "xi"
        )?;
        let best_lp = self.outcome.best_lp_index();
        let best_sim = self.outcome.best_sim_index();
        for (i, ev) in self.outcome.evaluations.iter().enumerate() {
            let name = if i == 0 { self.name.as_str() } else { "" };
            let mark = match (best_lp == Some(i), best_sim == Some(i)) {
                (true, true) => " *lp *sim",
                (true, false) => " *lp",
                (false, true) => " *sim",
                (false, false) => "",
            };
            // Rows from budget-truncated solves (Status::Feasible
            // incumbents) are marked so they cannot pass for proven
            // optima in the rendered table.
            let limit = if ev.proven_optimal { "" } else { " (limit)" };
            writeln!(
                f,
                "{:<10} {:>9.2} {:>8.4} {:>8.4} {:>8.4} {:>10.4} {:>10.4}{}{}",
                name,
                ev.tau,
                ev.theta_lp,
                ev.theta_sim,
                ev.err_pct,
                ev.xi_lp,
                ev.xi_sim,
                mark,
                limit
            )?;
        }
        if let Some(delta) = self.outcome.delta_pct() {
            writeln!(f, "Delta(%) = {delta:.1}")?;
        }
        // Solver failures the sweep absorbed: rendered with the table so
        // a partial frontier cannot read as a complete, clean run.
        for inc in &self.outcome.incidents {
            writeln!(f, "incident: {inc}")?;
        }
        Ok(())
    }
}

/// One row of Table 2.
#[derive(Debug, Clone)]
pub struct BenchmarkRow {
    /// Circuit name.
    pub name: String,
    /// Simple node count |N1|.
    pub n1: usize,
    /// Early node count |N2|.
    pub n2: usize,
    /// Edge count |E|.
    pub edges: usize,
    /// Effective cycle time before optimization (no bubbles → Θ = 1 → ξ*
    /// is the raw cycle time).
    pub xi_star: f64,
    /// Best late-evaluation effective cycle time (min-delay retiming).
    pub xi_nee: f64,
    /// ξ of the LP-selected configuration, measured by simulation.
    pub xi_lp_min: f64,
    /// ξ of the simulation-best configuration.
    pub xi_sim_min: f64,
    /// Improvement `I = (ξ_nee − ξ_sim_min)/ξ_nee · 100`.
    pub improvement_pct: f64,
    /// Observation-2 bookkeeping: did the LP pick the true optimum?
    pub lp_picked_optimum: bool,
    /// Observation-3 bookkeeping: average `err%` over the stored RCs.
    pub avg_err_pct: f64,
    /// Whether all MILP solves were proven optimal (false = some
    /// incumbents came from solver limits, like the paper's timeouts).
    pub proven_optimal: bool,
    /// Number of solver failures the sweep absorbed instead of aborting
    /// on (see [`MinEffCycOutcome::incidents`]); 0 on a clean run.
    pub incidents: usize,
}

/// Runs the full per-circuit pipeline: ξ*, the LS baseline ξ_nee, the
/// early-evaluation sweep, and the Table-2 columns.
///
/// # Errors
///
/// Propagates optimizer failures; see [`OptError`].
pub fn evaluate_benchmark(
    name: &str,
    g: &Rrg,
    opts: &CoreOptions,
) -> Result<(BenchmarkRow, Table1), OptError> {
    let xi_star = cycle_time::cycle_time(g).map_err(|e| OptError::Evaluation(e.to_string()))?;
    let xi_nee = rr_retime::min_period_retiming(g)
        .map_err(|e| OptError::Evaluation(e.to_string()))?
        .period;

    let outcome = min_eff_cyc(g, opts)?;
    let best_lp = outcome
        .best_lp()
        .ok_or_else(|| OptError::Evaluation("sweep produced no configurations".into()))?;
    let best_sim = outcome
        .best_simulated()
        .ok_or_else(|| OptError::Evaluation("sweep produced no configurations".into()))?;
    let xi_lp_min = best_lp.xi_sim;
    let xi_sim_min = best_sim.xi_sim;
    let avg_err = outcome
        .evaluations
        .iter()
        .map(|e| e.err_pct.abs())
        .sum::<f64>()
        / outcome.evaluations.len() as f64;

    let row = BenchmarkRow {
        name: name.to_string(),
        n1: g.num_simple(),
        n2: g.num_early(),
        edges: g.num_edges(),
        xi_star,
        xi_nee,
        xi_lp_min,
        xi_sim_min,
        improvement_pct: (xi_nee - xi_sim_min) / xi_nee * 100.0,
        lp_picked_optimum: outcome.best_lp_index() == outcome.best_sim_index(),
        avg_err_pct: avg_err,
        proven_optimal: outcome.all_proven_optimal,
        incidents: outcome.incidents.len(),
    };
    let table1 = Table1 {
        name: name.to_string(),
        outcome,
    };
    Ok((row, table1))
}

/// Verifies the paper's ξ_nee claim on one circuit: "in the experiments
/// the ξ_nee was always provided by min-delay retiming" — i.e. running the
/// full `MIN_EFF_CYC` sweep with **all nodes simple** (late evaluation)
/// should not beat the Leiserson–Saxe period except in the rare unbalanced
/// cases \[9\] describes.
///
/// Returns `(ls_period, late_sweep_best_xi)`.
///
/// # Errors
///
/// Propagates optimizer failures.
pub fn late_sweep_check(g: &Rrg, opts: &CoreOptions) -> Result<(f64, f64), OptError> {
    let late = g.with_late_evaluation();
    let ls = rr_retime::min_period_retiming(&late)
        .map_err(|e| OptError::Evaluation(e.to_string()))?
        .period;
    let sweep = min_eff_cyc(&late, opts)?;
    let best = sweep
        .best_simulated()
        .ok_or_else(|| OptError::Evaluation("late sweep empty".into()))?
        .xi_sim;
    Ok((ls, best))
}

/// Table 2: all benchmark rows plus the paper's three observations.
#[derive(Debug, Clone, Default)]
pub struct Table2 {
    /// Benchmark rows, in run order.
    pub rows: Vec<BenchmarkRow>,
}

impl Table2 {
    /// Observation 1: average improvement over the late baseline.
    pub fn average_improvement_pct(&self) -> f64 {
        if self.rows.is_empty() {
            return 0.0;
        }
        self.rows.iter().map(|r| r.improvement_pct).sum::<f64>() / self.rows.len() as f64
    }

    /// Observation 2: in how many cases the LP-selected configuration was
    /// the simulation optimum.
    pub fn lp_optimum_matches(&self) -> usize {
        self.rows.iter().filter(|r| r.lp_picked_optimum).count()
    }

    /// Observation 3: average throughput-bound error.
    pub fn average_err_pct(&self) -> f64 {
        if self.rows.is_empty() {
            return 0.0;
        }
        self.rows.iter().map(|r| r.avg_err_pct).sum::<f64>() / self.rows.len() as f64
    }
}

impl fmt::Display for Table2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<8} {:>5} {:>5} {:>5} {:>9} {:>9} {:>9} {:>9} {:>7}",
            "Name", "|N1|", "|N2|", "|E|", "xi*", "xi_nee", "xi_lp", "xi_sim", "I%"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<8} {:>5} {:>5} {:>5} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>7.1}{}",
                r.name,
                r.n1,
                r.n2,
                r.edges,
                r.xi_star,
                r.xi_nee,
                r.xi_lp_min,
                r.xi_sim_min,
                r.improvement_pct,
                match (r.proven_optimal, r.incidents) {
                    (true, 0) => String::new(),
                    (false, 0) => "  (limit)".into(),
                    (_, n) => format!("  (limit, {n} incidents)"),
                },
            )?;
        }
        writeln!(f, "---")?;
        writeln!(
            f,
            "Observation 1: average improvement I% = {:.1}",
            self.average_improvement_pct()
        )?;
        writeln!(
            f,
            "Observation 2: RC_lp_min = RC_min in {}/{} cases",
            self.lp_optimum_matches(),
            self.rows.len()
        )?;
        writeln!(
            f,
            "Observation 3: average err% = {:.1}",
            self.average_err_pct()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rr_rrg::figures;

    #[test]
    fn benchmark_pipeline_on_the_motivating_example() {
        let g = figures::figure_1a(0.9);
        let (row, table1) = evaluate_benchmark("fig1a", &g, &CoreOptions::fast()).unwrap();
        assert_eq!(row.xi_star, 3.0);
        assert_eq!(row.xi_nee, 3.0);
        // Early evaluation enables a real improvement (paper: Figure 2
        // reaches ξ = 3 − 2α = 1.2).
        assert!(row.improvement_pct > 30.0, "I% = {}", row.improvement_pct);
        // Rendering works and mentions the markers.
        let rendered = table1.to_string();
        assert!(rendered.contains("xi_lp"));
        assert!(rendered.contains("*sim"));
    }

    #[test]
    fn late_sweep_rarely_beats_min_delay_retiming() {
        // On the motivating example the late sweep must tie the LS period
        // exactly (the paper's observation for its whole suite).
        let g = figures::figure_1a(0.5);
        let (ls, best) = late_sweep_check(&g, &CoreOptions::fast()).unwrap();
        assert_eq!(ls, 3.0);
        // The sweep can tie via a different Pareto point (e.g. τ = 2 with
        // Θ = 2/3); allow simulation noise around the tie.
        assert!(best >= ls - 0.05, "late sweep {best} beat retiming {ls}");
        assert!(best <= ls + 0.1, "late sweep failed to reach retiming");
    }

    #[test]
    fn table1_marks_rows_from_truncated_solves() {
        use crate::evaluate::RcEvaluation;
        use rr_rrg::Config;
        let mk_ev = |proven: bool| RcEvaluation {
            config: Config {
                tokens: vec![],
                buffers: vec![],
            },
            tau: 2.0,
            theta_lp: 0.5,
            theta_sim: 0.5,
            xi_lp: 4.0,
            xi_sim: 4.0,
            err_pct: 0.0,
            proven_optimal: proven,
        };
        let t = Table1 {
            name: "probe".into(),
            outcome: MinEffCycOutcome {
                evaluations: vec![mk_ev(true), mk_ev(false)],
                all_proven_optimal: false,
                total_nodes: 0,
                total_simplex_iters: 0,
                incidents: vec!["max_thr(2.0000): pivot budget".into()],
            },
        };
        let rendered = t.to_string();
        assert_eq!(
            rendered.matches("(limit)").count(),
            1,
            "exactly the truncated row must be marked:\n{rendered}"
        );
        assert!(
            rendered.contains("incident: max_thr(2.0000): pivot budget"),
            "absorbed solver failures must be rendered:\n{rendered}"
        );
    }

    #[test]
    fn table2_aggregates() {
        let mk = |i: f64, m: bool| BenchmarkRow {
            name: "x".into(),
            n1: 1,
            n2: 1,
            edges: 2,
            xi_star: 10.0,
            xi_nee: 10.0,
            xi_lp_min: 10.0 - i / 10.0,
            xi_sim_min: 10.0 - i / 10.0,
            improvement_pct: i,
            lp_picked_optimum: m,
            avg_err_pct: 5.0,
            proven_optimal: true,
            incidents: 0,
        };
        let t = Table2 {
            rows: vec![mk(10.0, true), mk(20.0, false)],
        };
        assert!((t.average_improvement_pct() - 15.0).abs() < 1e-9);
        assert_eq!(t.lp_optimum_matches(), 1);
        assert!((t.average_err_pct() - 5.0).abs() < 1e-9);
        assert!(t.to_string().contains("Observation 1"));
    }
}
