//! The `MIN_CYC(x)` / `MAX_THR(τ)` MILP formulations (§4).
//!
//! Both share one constraint body over the variables
//!
//! * `r(n)` — integer retiming vector (Definition 2.6), `r(n₀) = 0` fixed
//!   to break the uniform-shift symmetry,
//! * `R'(e)` — integer buffer counts with `R'(e) ≥ R0(e) + r(v) − r(u)`
//!   (Definition 2.7; bubbles are the slack of this inequality),
//! * continuous timing variables implementing Lemma 2.1 (path
//!   constraints), condensed to one arrival variable per node,
//! * continuous free potentials σ̂ implementing Lemma 3.2 (throughput
//!   constraints) via LP (4) over the shared TGMG skeleton, with the
//!   bilinear `x·r` products absorbed into σ̂ — the token coefficients
//!   that remain multiply the **original** `R0`, which is what makes the
//!   constraints linear for fixed `x` *or* fixed `τ`.
//!
//! `MIN_CYC` fixes `x` and minimises the cycle time `τ`; `MAX_THR` fixes
//! `τ` and minimises `x = 1/Θ_lp`.

use std::error::Error;
use std::fmt;

use rr_milp::{
    cmp, solve_with_stats_hinted, BranchBoundStats, LinExpr, Model, Sense, Solution, SolveError,
    Status, VarId,
};
use rr_rrg::{config::retime_tokens, Config, NodeKind, Rrg};
use rr_tgmg::{DelaySrc, MarkingSrc, TgmgSkeleton};

use crate::bounds::bounds_of;
use crate::CoreOptions;

/// Optimization failures.
#[derive(Debug, Clone, PartialEq)]
pub enum OptError {
    /// The MILP is infeasible (e.g. `MIN_CYC(1/Θ)` past the achievable
    /// throughput).
    Infeasible,
    /// Solver resource limits were hit before any feasible point.
    SolverLimit,
    /// Other solver failure.
    Solver(SolveError),
    /// The extracted configuration failed validation (indicates a
    /// formulation bug; surfaced rather than silently repaired).
    BadConfig(String),
    /// Evaluation of a configuration failed.
    Evaluation(String),
}

impl fmt::Display for OptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptError::Infeasible => f.write_str("formulation is infeasible"),
            OptError::SolverLimit => f.write_str("solver limits reached without an incumbent"),
            OptError::Solver(e) => write!(f, "solver failure: {e}"),
            OptError::BadConfig(m) => write!(f, "extracted configuration invalid: {m}"),
            OptError::Evaluation(m) => write!(f, "evaluation failed: {m}"),
        }
    }
}

impl Error for OptError {}

impl From<SolveError> for OptError {
    fn from(e: SolveError) -> Self {
        match e {
            SolveError::Infeasible => OptError::Infeasible,
            SolveError::IterationLimit => OptError::SolverLimit,
            other => OptError::Solver(other),
        }
    }
}

/// Result of one MILP solve.
#[derive(Debug, Clone)]
pub struct OptOutcome {
    /// The extracted retiming/recycling configuration.
    pub config: Config,
    /// Objective value (τ for `MIN_CYC`, x for `MAX_THR`).
    pub objective: f64,
    /// `true` when the solver proved optimality (vs returning the best
    /// incumbent at a limit, mirroring the paper's CPLEX timeouts).
    pub proven_optimal: bool,
    /// Branch & bound search statistics (nodes, simplex pivots,
    /// warm/cold solve split) — the perf telemetry the scaling benches
    /// record in `BENCH_milp.json`.
    pub stats: BranchBoundStats,
}

impl OptOutcome {
    /// `true` when a node or time limit cut the search short, so the
    /// configuration is a `Status::Feasible` incumbent rather than a
    /// proven optimum — the explicit complement of
    /// [`OptOutcome::proven_optimal`] for report paths.
    pub fn truncated(&self) -> bool {
        !self.proven_optimal
    }
}

/// Whether a model parameter is an optimization variable or a constant.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Mode {
    /// The parameter is fixed to this value.
    Const(f64),
    /// The parameter is a decision variable (and the objective).
    Variable,
}

/// A built model with its variable handles.
struct Built {
    model: Model,
    r: Vec<VarId>,
    buf: Vec<VarId>,
    /// τ handle when variable.
    tau: Option<VarId>,
    /// x handle when variable.
    x: Option<VarId>,
}

/// Builds the shared constraint body. Exactly one of `tau`/`x` should be
/// [`Mode::Variable`]; that variable becomes the minimization objective.
///
/// `fix_buffers` freezes `R'` to a given assignment (used for the
/// fixed-configuration cross-check against the direct LP bound; the
/// retiming link is dropped since tokens influence nothing else).
///
/// `cuts` adds retiming cycle-sum cuts when τ is a constant and buffers
/// are free: any configuration with cycle time ≤ τ places at least
/// `⌈D(C)/τ⌉` buffers on every cycle `C` (delay sum `D(C)`), while the
/// LP relaxation only implies the token sum of the retiming link rows —
/// the cuts carry that weak rhs in the standard form and branch & bound
/// activates the ceiling rhs lazily where it is violated.
fn build(g: &Rrg, tau_mode: Mode, x_mode: Mode, fix_buffers: Option<&[i64]>, cuts: bool) -> Built {
    let bounds = bounds_of(g);
    let skeleton = TgmgSkeleton::of(g);
    let mut m = Model::new(Sense::Minimize);

    let (tau_var, tau_param): (Option<VarId>, LinExpr) = match tau_mode {
        Mode::Const(c) => (None, LinExpr::constant(c)),
        Mode::Variable => {
            let v = m.add_continuous("tau", g.max_delay(), bounds.tau_star);
            (Some(v), LinExpr::var(v))
        }
    };
    let (x_var, x_scaled): (Option<VarId>, Box<dyn Fn(f64) -> LinExpr>) = match x_mode {
        Mode::Const(c) => (None, Box::new(move |k: f64| LinExpr::constant(k * c))),
        Mode::Variable => {
            let v = m.add_continuous("x", 1.0, bounds.max_x);
            (Some(v), Box::new(move |k: f64| LinExpr::term(v, k)))
        }
    };
    match (tau_var, x_var) {
        (Some(t), None) => m.set_objective(LinExpr::var(t)),
        (None, Some(x)) => m.set_objective(LinExpr::var(x)),
        _ => panic!("exactly one of tau/x must be the objective variable"),
    }

    // --- configuration variables ------------------------------------
    let r: Vec<VarId> = g
        .node_ids()
        .map(|n| {
            m.add_integer(
                format!("r_{}", n.index()),
                -(bounds.max_retiming as f64),
                bounds.max_retiming as f64,
            )
        })
        .collect();
    let buf: Vec<VarId> = g
        .edge_ids()
        .map(|e| m.add_integer(format!("R_{}", e.index()), 0.0, bounds.max_buffers as f64))
        .collect();

    // Branch on buffer counts before retiming values: for fixed buffers
    // the retiming subsystem is a network matrix whose relaxation is
    // already integral, so buf-first branching closes trees much faster.
    for &b in &buf {
        m.set_priority(b, 1);
    }

    if let Some(fixed) = fix_buffers {
        for (i, &b) in fixed.iter().enumerate() {
            m.fix_var(buf[i], b as f64);
        }
        for &rv in &r {
            m.fix_var(rv, 0.0);
        }
    } else {
        if !r.is_empty() {
            m.fix_var(r[0], 0.0); // break the uniform-shift symmetry
        }
        // R'(e) ≥ R0(e) + r(v) − r(u)  — Definition 2.7.
        for (id, e) in g.edges() {
            let expr =
                LinExpr::var(buf[id.index()]) - r[e.target().index()] + r[e.source().index()];
            m.add_constraint(expr, cmp::GE, e.tokens() as f64);
        }
    }

    // --- path constraints (Lemma 2.1, node-arrival form) -------------
    // With tout(e) = max(0, arr(u) + β(u) − τ*·R'(e)) eliminated, each
    // edge contributes a single row.
    let arr: Vec<VarId> = g
        .node_ids()
        .map(|n| m.add_continuous(format!("arr_{}", n.index()), 0.0, f64::INFINITY))
        .collect();
    for (id, e) in g.edges() {
        let u = e.source().index();
        let v = e.target().index();
        // arr(v) ≥ arr(u) + β(u) − τ*·R'(e)
        let expr = LinExpr::var(arr[v]) - arr[u] + LinExpr::term(buf[id.index()], bounds.tau_star);
        m.add_constraint(expr, cmp::GE, g.node(e.source()).delay());
    }
    // departure(u) = arr(u) + β(u) ≤ τ for every node.
    for (id, node) in g.nodes() {
        let expr = LinExpr::var(arr[id.index()]) - tau_param.clone();
        m.add_constraint(expr, cmp::LE, -node.delay());
    }

    // --- throughput constraints (Lemma 3.2 via LP (4) on the reduced
    // skeleton; interior chain potentials are already eliminated) -------
    let reduced = skeleton.reduced();
    let sigma: Vec<VarId> = (0..reduced.nodes.len())
        .map(|i| m.add_free(format!("sig_{i}")))
        .collect();
    let mut pred: Vec<Vec<usize>> = vec![Vec::new(); reduced.nodes.len()];
    for (i, e) in reduced.edges.iter().enumerate() {
        pred[e.to].push(i);
    }
    // m̂(a) = x·Σm0 − Σ chain δ + σ̂(p) − σ̂(w); original tokens only —
    // the retiming terms are absorbed in σ̂.
    let marking_hat = |a: &rr_tgmg::skeleton::ReducedEdge, w: usize| -> LinExpr {
        let mut expr = LinExpr::new();
        for &src in &a.markings {
            expr += match src {
                MarkingSrc::Const(c) => x_scaled(c as f64),
                MarkingSrc::TokensOf(e) => x_scaled(g.edge(e).tokens() as f64),
            };
        }
        for &d in &a.chain_delays {
            expr -= match d {
                DelaySrc::Const(c) => LinExpr::constant(c),
                DelaySrc::BuffersOf(e) => LinExpr::var(buf[e.index()]),
            };
        }
        expr + sigma[a.from] - sigma[w]
    };
    for (w, node) in reduced.nodes.iter().enumerate() {
        match node.kind {
            NodeKind::Simple => {
                for &a in &pred[w] {
                    // δ(w) ≤ m̂(a)
                    let delta: LinExpr = match node.delay {
                        DelaySrc::Const(c) => LinExpr::constant(c),
                        DelaySrc::BuffersOf(e) => LinExpr::var(buf[e.index()]),
                    };
                    let expr = delta - marking_hat(&reduced.edges[a], w);
                    m.add_constraint(expr, cmp::LE, 0.0);
                }
            }
            NodeKind::EarlyEval => {
                // Σ γ(a)·m̂(a) ≥ δ(w) = 0.
                debug_assert!(matches!(node.delay, DelaySrc::Const(c) if c == 0.0));
                let mut expr = LinExpr::new();
                for &a in &pred[w] {
                    let edge = &reduced.edges[a];
                    let gam = edge.gamma.expect("early skeleton input without γ");
                    expr += gam * marking_hat(edge, w);
                }
                m.add_constraint(expr, cmp::GE, 0.0);
            }
        }
    }

    // --- cycle-sum cuts (MAX_THR only: τ constant, buffers free) ------
    if cuts && fix_buffers.is_none() {
        if let (Mode::Const(tau), _) = (tau_mode, x_mode) {
            if tau > 1e-12 {
                for cycle in rr_rrg::algo::fundamental_cycles(g, 2 * g.num_edges()) {
                    let delay: f64 = cycle
                        .iter()
                        .map(|&e| g.node(g.edge(e).source()).delay())
                        .sum();
                    let weak: f64 = cycle.iter().map(|&e| g.edge(e).tokens() as f64).sum();
                    let strong = (delay / tau - 1e-9).ceil().max(weak);
                    if strong <= weak + 0.5 {
                        continue; // the LP-implied token sum already covers it
                    }
                    let mut expr = LinExpr::new();
                    for &e in &cycle {
                        expr += LinExpr::var(buf[e.index()]);
                    }
                    m.add_cut(expr, weak, strong);
                }
            }
        }
    }

    Built {
        model: m,
        r,
        buf,
        tau: tau_var,
        x: x_var,
    }
}

/// What the warm-start heuristic must preserve.
enum Repair {
    /// `MIN_CYC`: the configuration must reach Θ_lp ≥ 1/x (τ is free).
    Throughput { x: f64 },
    /// `MAX_THR`: the configuration must meet cycle time ≤ τ (Θ is free).
    Timing { tau: f64 },
}

/// Builds a warm-start hint from the LP relaxation: round the retiming,
/// derive legal buffers, then repair the violated side —
///
/// * throughput violations fall back to the bubble-free configuration of
///   the rounded retiming (Θ_lp = 1 by construction);
/// * timing violations are repaired greedily by dropping a bubble on the
///   middle of the critical path until τ is met.
///
/// Returns `(hint pairs, none-on-failure)`; failures only mean "no warm
/// start", never wrong answers (branch & bound verifies feasibility).
fn warm_start(g: &Rrg, built: &Built, repair: Repair, opts: &CoreOptions) -> Vec<(VarId, f64)> {
    // If the relaxation itself fails, fall back to the identity retiming
    // (the input graph's own configuration is always legal).
    let relax = built.model.solve_relaxation(&opts.solver).ok();
    let r: Vec<i64> = match &relax {
        Some(sol) => built
            .r
            .iter()
            .map(|&v| sol.value(v).round() as i64)
            .collect(),
        None => vec![0; built.r.len()],
    };
    let tokens = retime_tokens(g, &r);
    let mut buffers: Vec<i64> = built
        .buf
        .iter()
        .zip(&tokens)
        .map(|(&v, &t)| {
            let rounded = relax.as_ref().map_or(0, |s| s.value(v).round() as i64);
            rounded.max(t).max(0)
        })
        .collect();

    match repair {
        Repair::Throughput { x } => {
            let tgmg = TgmgSkeleton::of(g).instantiate(&tokens, &buffers);
            let ok = rr_tgmg::lp_bound::throughput_upper_bound(&tgmg)
                .map(|th| th + 1e-9 >= 1.0 / x)
                .unwrap_or(false);
            if !ok {
                // Bubble-free fallback: every EB holds a token → Θ_lp = 1.
                buffers = tokens.iter().map(|&t| t.max(0)).collect();
            }
        }
        Repair::Timing { tau } => {
            let cap = 4 * g.num_edges() + 16;
            for _ in 0..cap {
                let Ok(cp) = rr_rrg::cycle_time::critical_path_with(g, &buffers) else {
                    return Vec::new();
                };
                if cp.delay <= tau + 1e-9 {
                    break;
                }
                // Cut the path in the middle: buffer the edge between the
                // two middle nodes.
                let mid = cp.nodes.len() / 2;
                let (a, b) = if mid + 1 < cp.nodes.len() {
                    (cp.nodes[mid], cp.nodes[mid + 1])
                } else if cp.nodes.len() >= 2 {
                    (cp.nodes[0], cp.nodes[1])
                } else {
                    return Vec::new(); // single-node path exceeding τ
                };
                let Some(&edge) = g
                    .out_edges(a)
                    .iter()
                    .find(|&&e| g.edge(e).target() == b && buffers[e.index()] == 0)
                else {
                    return Vec::new();
                };
                buffers[edge.index()] += 1;
            }
            if rr_rrg::cycle_time::cycle_time_with(g, &buffers)
                .map(|t| t > tau + 1e-9)
                .unwrap_or(true)
            {
                return Vec::new();
            }
        }
    }

    let mut hint: Vec<(VarId, f64)> = Vec::with_capacity(built.r.len() + built.buf.len());
    hint.extend(built.r.iter().zip(&r).map(|(&v, &val)| (v, val as f64)));
    hint.extend(
        built
            .buf
            .iter()
            .zip(&buffers)
            .map(|(&v, &val)| (v, val as f64)),
    );
    hint
}

/// Extracts the integer configuration from a solution.
fn extract(g: &Rrg, built: &Built, sol: &Solution) -> Result<Config, OptError> {
    let r: Vec<i64> = built.r.iter().map(|&v| sol.int_value(v)).collect();
    let buffers: Vec<i64> = built.buf.iter().map(|&v| sol.int_value(v)).collect();
    let tokens = retime_tokens(g, &r);
    let cfg = Config { tokens, buffers };
    cfg.validate(g)
        .map_err(|e| OptError::BadConfig(e.to_string()))?;
    Ok(cfg)
}

/// `MIN_CYC(x)`: the configuration of minimum cycle time among those with
/// LP throughput bound ≥ 1/x.
///
/// `MIN_CYC(1)` is a min-delay retiming (no recycling can occur at Θ = 1,
/// cross-checked against Leiserson–Saxe in the tests).
///
/// # Errors
///
/// [`OptError::Infeasible`] when no configuration reaches the requested
/// throughput; [`OptError::SolverLimit`] when the solver budget expires
/// without an incumbent.
///
/// # Panics
///
/// Panics if `x < 1` (throughput cannot exceed one token per cycle).
pub fn min_cyc(g: &Rrg, x: f64, opts: &CoreOptions) -> Result<OptOutcome, OptError> {
    assert!(x >= 1.0 - 1e-9, "x = 1/Θ must be at least 1");
    let built = build(g, Mode::Variable, Mode::Const(x), None, opts.cuts);
    let hint = warm_start(g, &built, Repair::Throughput { x }, opts);
    let (sol, stats) = solve_with_stats_hinted(&built.model, &opts.solver, &hint)?;
    let config = extract(g, &built, &sol)?;
    Ok(OptOutcome {
        config,
        objective: sol.value(built.tau.expect("tau is the objective")),
        proven_optimal: sol.status == Status::Optimal,
        stats,
    })
}

/// `MAX_THR(τ)`: the configuration with cycle time ≤ τ maximising the LP
/// throughput bound (the solver minimises `x = 1/Θ_lp`).
///
/// # Errors
///
/// See [`min_cyc`]; infeasible only if `τ < β_max`.
pub fn max_thr(g: &Rrg, tau: f64, opts: &CoreOptions) -> Result<OptOutcome, OptError> {
    let built = build(g, Mode::Const(tau), Mode::Variable, None, opts.cuts);
    let hint = warm_start(g, &built, Repair::Timing { tau }, opts);
    let (sol, stats) = solve_with_stats_hinted(&built.model, &opts.solver, &hint)?;
    let config = extract(g, &built, &sol)?;
    Ok(OptOutcome {
        config,
        objective: sol.value(built.x.expect("x is the objective")),
        proven_optimal: sol.status == Status::Optimal,
        stats,
    })
}

/// Cross-check helper: minimises `x` for a **fixed** buffer assignment
/// with the symbolic throughput constraints. Must agree with the direct
/// LP (4) bound computed by `rr_tgmg::lp_bound` — the two code paths share
/// the skeleton but differ in the σ̂ absorption, so their agreement
/// validates the linearisation.
///
/// # Errors
///
/// See [`min_cyc`].
pub fn min_x_for_buffers(g: &Rrg, buffers: &[i64], opts: &CoreOptions) -> Result<f64, OptError> {
    // τ* (the sum of all delays) never restricts timing: any buffered
    // configuration meets it.
    let built = build(
        g,
        Mode::Const(bounds_of(g).tau_star),
        Mode::Variable,
        Some(buffers),
        false,
    );
    let sol = built.model.solve_with(&opts.solver)?;
    Ok(sol.value(built.x.expect("x is the objective")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rr_rrg::{cycle_time, figures};
    use rr_tgmg::{lp_bound, skeleton::TgmgSkeleton};

    #[test]
    #[ignore = "diagnostic probe"]
    fn probe_root_lp() {
        for name in ["s382", "s526", "s386"] {
            let g = rr_rrg::iscas::IscasProfile::by_name(name)
                .unwrap()
                .generate(1);
            let built = build(&g, Mode::Variable, Mode::Const(1.25), None, false);
            let mut o = rr_milp::SolverOptions::default();
            o.max_pivots = 2_000_000;
            let t0 = std::time::Instant::now();
            let res = built.model.solve_relaxation(&o);
            println!(
                "{name}: vars={} rows={} relax {:?} -> {:?}",
                built.model.num_vars(),
                built.model.num_constraints(),
                t0.elapsed(),
                res.map(|s| s.objective).map_err(|e| e.to_string())
            );
        }
    }

    #[test]
    fn fixed_config_x_matches_direct_lp_bound() {
        for g in [
            figures::figure_1a(0.5),
            figures::figure_1b(0.5),
            figures::figure_1b(0.9),
            figures::figure_2(0.7),
        ] {
            let buffers: Vec<i64> = g.edges().map(|(_, e)| e.buffers()).collect();
            let x = min_x_for_buffers(&g, &buffers, &CoreOptions::fast()).unwrap();
            let tokens: Vec<i64> = g.edges().map(|(_, e)| e.tokens()).collect();
            let t = TgmgSkeleton::of(&g).instantiate(&tokens, &buffers);
            let direct = lp_bound::throughput_upper_bound(&t).unwrap();
            assert!(
                (1.0 / x - direct).abs() < 1e-5,
                "absorbed {} vs direct {}",
                1.0 / x,
                direct
            );
        }
    }

    #[test]
    fn min_cyc_at_unit_throughput_matches_leiserson_saxe() {
        let g = figures::figure_1a(0.5);
        let out = min_cyc(&g, 1.0, &CoreOptions::fast()).unwrap();
        let ls = rr_retime::min_period_retiming(&g).unwrap();
        let tau = cycle_time::cycle_time_with(&g, &out.config.buffers).unwrap();
        assert_eq!(tau, ls.period, "MIN_CYC(1) must equal min-delay retiming");
    }

    #[test]
    fn max_thr_at_large_tau_reaches_unit_throughput() {
        let g = figures::figure_1a(0.5);
        let out = max_thr(&g, 10.0, &CoreOptions::fast()).unwrap();
        assert!(out.objective <= 1.0 + 1e-6, "x = {}", out.objective);
    }

    #[test]
    fn max_thr_at_unit_tau_discovers_figure_2_performance() {
        // At τ = 1 the best Θ_lp should be at least 1/(3−2α) (Figure 2 is
        // feasible at that cycle time).
        let alpha = 0.9;
        let g = figures::figure_1a(alpha);
        let out = max_thr(&g, 1.0, &CoreOptions::fast()).unwrap();
        let theta = 1.0 / out.objective;
        let fig2 = figures::figure_2_throughput(alpha);
        assert!(
            theta >= fig2 - 1e-6,
            "Θ_lp = {theta} below Figure 2's {fig2}"
        );
        // The returned configuration really has cycle time ≤ 1.
        let tau = cycle_time::cycle_time_with(&g, &out.config.buffers).unwrap();
        assert!(tau <= 1.0 + 1e-9);
    }

    #[test]
    fn min_cyc_infeasible_past_unit_throughput() {
        let g = figures::figure_1a(0.5);
        // Θ > 1 is impossible: x < 1 is rejected by assertion, so ask for
        // a throughput the graph cannot reach with any buffers: Θ = 1
        // needs zero bubbles; requesting τ < β_max via max_thr is the
        // infeasible direction instead.
        let err = max_thr(&g, 0.5, &CoreOptions::fast()).unwrap_err();
        assert_eq!(err, OptError::Infeasible);
    }
}
