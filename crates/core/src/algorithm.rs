//! `MIN_EFF_CYC(RRG, k)` — the Pareto-sweep heuristic of §4.
//!
//! ```text
//! τ = β_max; RC = MAX_THR(τ); store(RC)
//! while Θ_lp(RC) < 1:
//!     Θ = Θ_lp(RC) + ε
//!     τ = τ(MIN_CYC(1/Θ))
//!     RC = MAX_THR(τ); store(RC)
//! return the stored RC with minimal ξ_lp (plus the k best others)
//! ```
//!
//! Every stored configuration is additionally evaluated by simulation so
//! the caller can report both `RC_lp_min` (what the LP picks) and
//! `RC_min` (what simulation says is truly best) — the paper's Table 1.

use std::collections::HashSet;

use rr_rrg::{cycle_time, Rrg};

use crate::evaluate::{evaluate_config, RcEvaluation};
use crate::formulation::{max_thr, min_cyc, OptError};
use crate::CoreOptions;

/// Everything the sweep produced.
#[derive(Debug, Clone)]
pub struct MinEffCycOutcome {
    /// Distinct configurations in sweep order (cycle time increasing),
    /// each fully evaluated.
    pub evaluations: Vec<RcEvaluation>,
    /// `true` when every MILP solve in the sweep was proven optimal.
    pub all_proven_optimal: bool,
    /// Branch & bound nodes summed over every MILP solve in the sweep.
    pub total_nodes: usize,
    /// Simplex pivots summed over every MILP solve in the sweep — the
    /// single number that tracks how much LP work the whole optimization
    /// cost (recorded by the scaling benches).
    pub total_simplex_iters: usize,
    /// Human-readable records of solver failures the sweep absorbed
    /// instead of aborting on (iteration/time limits, numerical
    /// failures, evaluation errors): the sweep keeps whatever frontier
    /// it has built and the report renders these alongside it. Empty on
    /// a clean run; non-empty implies `!all_proven_optimal`.
    pub incidents: Vec<String>,
}

impl MinEffCycOutcome {
    /// Index of `RC_lp_min` — the configuration the LP-guided heuristic
    /// selects (minimal ξ_lp).
    pub fn best_lp_index(&self) -> Option<usize> {
        (0..self.evaluations.len()).min_by(|&a, &b| {
            self.evaluations[a]
                .xi_lp
                .total_cmp(&self.evaluations[b].xi_lp)
        })
    }

    /// Index of `RC_min` — the truly best configuration per simulation
    /// (minimal ξ).
    pub fn best_sim_index(&self) -> Option<usize> {
        (0..self.evaluations.len()).min_by(|&a, &b| {
            self.evaluations[a]
                .xi_sim
                .total_cmp(&self.evaluations[b].xi_sim)
        })
    }

    /// The LP-selected configuration.
    pub fn best_lp(&self) -> Option<&RcEvaluation> {
        self.best_lp_index().map(|i| &self.evaluations[i])
    }

    /// The simulation-best configuration.
    pub fn best_simulated(&self) -> Option<&RcEvaluation> {
        self.best_sim_index().map(|i| &self.evaluations[i])
    }

    /// `Δ%` of Table 1: how much worse `RC_lp_min` is than `RC_min`,
    /// `(ξ(RC_lp_min) − ξ(RC_min)) / ξ(RC_min) · 100`.
    pub fn delta_pct(&self) -> Option<f64> {
        let lp = self.best_lp()?.xi_sim;
        let best = self.best_simulated()?.xi_sim;
        Some((lp - best) / best * 100.0)
    }

    /// The `k` best evaluations by ξ_lp (the paper's "k other best RC").
    pub fn top_k(&self, k: usize) -> Vec<&RcEvaluation> {
        let mut idx: Vec<usize> = (0..self.evaluations.len()).collect();
        idx.sort_by(|&a, &b| {
            self.evaluations[a]
                .xi_lp
                .total_cmp(&self.evaluations[b].xi_lp)
        });
        idx.into_iter()
            .take(k)
            .map(|i| &self.evaluations[i])
            .collect()
    }
}

/// Classifies a sweep-stage failure: budget/numerical/evaluation
/// failures become recorded incidents (the sweep keeps its partial
/// frontier); anything else — infeasibility where it is structurally
/// impossible, malformed configurations — stays a hard error.
fn sweep_incident(stage: &str, e: &OptError) -> Option<String> {
    match e {
        OptError::SolverLimit | OptError::Solver(_) | OptError::Evaluation(_) => {
            Some(format!("{stage}: {e}"))
        }
        _ => None,
    }
}

/// Runs the `MIN_EFF_CYC` sweep on `g`.
///
/// A solver budget or numerical failure mid-sweep does not abort the
/// sweep: the stage's failure is recorded in
/// [`MinEffCycOutcome::incidents`], `all_proven_optimal` is cleared, and
/// whatever frontier was built so far is returned (the min-delay
/// retiming anchor guarantees it is never empty when retiming itself
/// succeeds).
///
/// # Errors
///
/// Propagates MILP failures other than the expected end-of-sweep
/// infeasibility and the absorbed budget/numerical classes; see
/// [`OptError`].
pub fn min_eff_cyc(g: &Rrg, opts: &CoreOptions) -> Result<MinEffCycOutcome, OptError> {
    let mut evaluations: Vec<RcEvaluation> = Vec::new();
    let mut seen: HashSet<(Vec<i64>, Vec<i64>)> = HashSet::new();
    let mut all_proven = true;
    let mut incidents: Vec<String> = Vec::new();
    let mut push = |evals: &mut Vec<RcEvaluation>, ev: RcEvaluation| {
        if seen.insert((ev.config.tokens.clone(), ev.config.buffers.clone())) {
            evals.push(ev);
        }
    };

    // Anchor: the min-delay retiming configuration. The paper's sweep
    // always ends on it ("the last stored RC is always a min-delay
    // retiming configuration"); seeding it explicitly guarantees the
    // outcome never loses to plain retiming even when the MILPs hit
    // their budgets.
    if let Ok(ls) = rr_retime::min_period_retiming(g) {
        let cfg = ls.config(g);
        if cfg.validate(g).is_ok() {
            match evaluate_config(g, &cfg, opts) {
                Ok(ev) => push(&mut evaluations, ev),
                Err(e) => match sweep_incident("evaluate(min-delay anchor)", &e) {
                    Some(msg) => incidents.push(msg),
                    None => return Err(e),
                },
            }
        }
    }

    let mut total_nodes = 0usize;
    let mut total_simplex_iters = 0usize;
    let mut outcome = match max_thr(g, g.max_delay(), opts) {
        Ok(o) => o,
        Err(e) => match sweep_incident("max_thr(beta_max)", &e) {
            Some(msg) => {
                incidents.push(msg);
                return Ok(MinEffCycOutcome {
                    evaluations,
                    all_proven_optimal: false,
                    total_nodes,
                    total_simplex_iters,
                    incidents,
                });
            }
            None => return Err(e),
        },
    };
    // Aggregate each solve's proof status the moment it returns (the old
    // loop-top aggregation silently dropped the final `MAX_THR` outcome
    // when the iteration bound — rather than the Θ_lp = 1 exit — ended
    // the sweep, letting a truncated solve masquerade as proven).
    all_proven &= outcome.proven_optimal;
    total_nodes += outcome.stats.nodes;
    total_simplex_iters += outcome.stats.simplex_iters;
    // Throughput targets advance by at least ε per iteration even when a
    // budget-limited solve fails to move the frontier, so the loop is
    // bounded without an early-break heuristic.
    let mut target = 0.0f64;
    let max_iters = (1.0 / opts.epsilon) as usize + 4;
    for _ in 0..max_iters {
        let mut eval = match evaluate_config(g, &outcome.config, opts) {
            Ok(ev) => ev,
            Err(e) => match sweep_incident("evaluate(RC)", &e) {
                Some(msg) => {
                    incidents.push(msg);
                    break;
                }
                None => return Err(e),
            },
        };
        // Per-row provenance: Table 1 marks configurations whose solve
        // hit a budget (Status::Feasible incumbents, like the paper's
        // CPLEX timeouts) instead of presenting them as proven optima.
        eval.proven_optimal = outcome.proven_optimal;
        let theta_lp = eval.theta_lp;
        push(&mut evaluations, eval);
        if theta_lp >= 1.0 - 1e-9 || target >= 1.0 {
            break;
        }
        target = (target.max(theta_lp) + opts.epsilon).min(1.0);
        let mc = match min_cyc(g, 1.0 / target, opts) {
            Ok(o) => o,
            Err(OptError::Infeasible) => break,
            Err(e) => match sweep_incident(&format!("min_cyc(1/{target:.4})"), &e) {
                Some(msg) => {
                    incidents.push(msg);
                    break;
                }
                None => return Err(e),
            },
        };
        all_proven &= mc.proven_optimal;
        total_nodes += mc.stats.nodes;
        total_simplex_iters += mc.stats.simplex_iters;
        let tau = match cycle_time::cycle_time_with(g, &mc.config.buffers) {
            Ok(tau) => tau,
            Err(e) => {
                incidents.push(format!("cycle_time(MIN_CYC config): {e}"));
                break;
            }
        };
        outcome = match max_thr(g, tau, opts) {
            Ok(o) => o,
            Err(e) => match sweep_incident(&format!("max_thr({tau:.4})"), &e) {
                Some(msg) => {
                    incidents.push(msg);
                    break;
                }
                None => return Err(e),
            },
        };
        all_proven &= outcome.proven_optimal;
        total_nodes += outcome.stats.nodes;
        total_simplex_iters += outcome.stats.simplex_iters;
    }

    Ok(MinEffCycOutcome {
        evaluations,
        all_proven_optimal: all_proven && incidents.is_empty(),
        total_nodes,
        total_simplex_iters,
        incidents,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pareto;
    use rr_rrg::figures;

    #[test]
    fn sweep_on_figure_1a_finds_the_paper_frontier() {
        let alpha = 0.9;
        let g = figures::figure_1a(alpha);
        let out = min_eff_cyc(&g, &CoreOptions::fast()).unwrap();
        assert!(!out.evaluations.is_empty());

        // The last stored RC is a min-delay retiming configuration
        // (Θ_lp = 1) — §4 of the paper.
        let last = out.evaluations.last().unwrap();
        assert!((last.theta_lp - 1.0).abs() < 1e-6);
        assert_eq!(last.tau, 3.0);

        // The frontier contains a τ = 1 configuration at least as good as
        // Figure 2 (Θ = 1/(3−2α)).
        let best = out.best_simulated().unwrap();
        let fig2_xi = 1.0 / figures::figure_2_throughput(alpha);
        assert!(
            best.xi_sim <= fig2_xi + 0.1,
            "best ξ = {} vs Figure 2's {fig2_xi}",
            best.xi_sim
        );

        // All stored evaluations are mutually non-dominated w.r.t. Θ_lp.
        let nd = pareto::non_dominated_indices(&out.evaluations);
        assert_eq!(nd.len(), out.evaluations.len(), "{:?}", out.evaluations);
    }

    /// A starved pivot budget fails every MILP solve; the sweep must
    /// absorb that as recorded incidents — returning whatever frontier
    /// it built (possibly none) with `all_proven_optimal` cleared —
    /// instead of propagating the failure and losing the whole row.
    #[test]
    fn budget_starved_sweep_records_incidents_instead_of_aborting() {
        let g = figures::figure_1a(0.9);
        let mut opts = CoreOptions::fast();
        opts.solver.max_pivots = 3;
        opts.solver.max_nodes = 2;
        let out = min_eff_cyc(&g, &opts).expect("budget starvation must not abort the sweep");
        assert!(
            !out.incidents.is_empty(),
            "starved solves must be recorded: {out:?}"
        );
        assert!(!out.all_proven_optimal);
    }

    #[test]
    fn sweep_never_loses_to_plain_retiming() {
        let g = figures::figure_1a(0.5);
        let out = min_eff_cyc(&g, &CoreOptions::fast()).unwrap();
        let ls = rr_retime::min_period_retiming(&g).unwrap();
        let best = out.best_simulated().unwrap();
        assert!(
            best.xi_sim <= ls.period + 0.05,
            "ξ {} worse than retiming's {}",
            best.xi_sim,
            ls.period
        );
    }

    #[test]
    fn late_evaluation_sweep_cannot_beat_min_cycle_ratio_economics() {
        // With all nodes simple, recycling rarely helps; the sweep must
        // at least reproduce the min-delay retiming point.
        let g = figures::figure_1a(0.5).with_late_evaluation();
        let out = min_eff_cyc(&g, &CoreOptions::fast()).unwrap();
        let last = out.evaluations.last().unwrap();
        assert!((last.theta_lp - 1.0).abs() < 1e-6);
        assert_eq!(last.tau, 3.0);
        let best = out.best_lp().unwrap();
        assert!(best.xi_lp >= 3.0 - 1e-6, "late ξ_lp = {}", best.xi_lp);
    }
}
