//! Property tests of the MILP formulation on random graphs.
//!
//! The central one: for any fixed configuration, minimising `x` under the
//! *symbolic* throughput constraints (σ̂ absorption + chain reduction)
//! must reproduce the *direct* LP (4) bound computed on the instantiated
//! TGMG — this pins the correctness of both model reductions and of the
//! bilinear-term absorption at once.

use proptest::prelude::*;

use rr_rrg::generate::GeneratorParams;
use rr_rrg::Config;
use rr_tgmg::{lp_bound, TgmgSkeleton};

use crate::formulation::{max_thr, min_cyc, min_x_for_buffers};
use crate::CoreOptions;

fn tiny_graphs() -> impl Strategy<Value = (GeneratorParams, u64)> {
    (2usize..8, 0usize..3, 0usize..6, any::<u64>()).prop_map(|(ns, ne, extra, seed)| {
        let n = ns + ne;
        (
            GeneratorParams::paper_defaults(ns, ne, n + ne + extra),
            seed,
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn absorbed_constraints_match_direct_lp_bound((p, seed) in tiny_graphs()) {
        let g = p.generate(seed);
        // Evaluate at the initial configuration *and* at a recycled one.
        let mut cfg = Config::initial(&g);
        for check in 0..2 {
            let x = min_x_for_buffers(&g, &cfg.buffers, &CoreOptions::fast()).unwrap();
            let t = TgmgSkeleton::of(&g).instantiate(&cfg.tokens, &cfg.buffers);
            let direct = lp_bound::throughput_upper_bound(&t).unwrap();
            prop_assert!(
                (1.0 / x - direct).abs() < 1e-5,
                "check {check}: absorbed {} vs direct {direct}",
                1.0 / x
            );
            // Second round: add a bubble on the first edge.
            cfg.buffers[0] += 1;
        }
    }

    #[test]
    fn min_cyc_at_unit_throughput_equals_leiserson_saxe((p, seed) in tiny_graphs()) {
        let g = p.generate(seed);
        let ls = rr_retime::min_period_retiming(&g).unwrap();
        let out = min_cyc(&g, 1.0, &CoreOptions::fast()).unwrap();
        if out.proven_optimal {
            let tau = rr_rrg::cycle_time::cycle_time_with(&g, &out.config.buffers).unwrap();
            prop_assert!(
                (tau - ls.period).abs() < 1e-9,
                "MIN_CYC(1) = {tau} vs LS {}", ls.period
            );
        }
    }

    #[test]
    fn max_thr_at_initial_tau_reaches_unit_throughput((p, seed) in tiny_graphs()) {
        // The generator's initial configuration is bubble-free, so at its
        // own cycle time a Θ_lp = 1 configuration exists (itself).
        let g = p.generate(seed);
        let tau = rr_rrg::cycle_time::cycle_time(&g).unwrap();
        let out = max_thr(&g, tau, &CoreOptions::fast()).unwrap();
        prop_assert!(out.objective <= 1.0 + 1e-6, "x = {}", out.objective);
        // And the returned configuration meets the timing budget.
        let got = rr_rrg::cycle_time::cycle_time_with(&g, &out.config.buffers).unwrap();
        prop_assert!(got <= tau + 1e-9);
    }

    #[test]
    fn optimizer_configs_always_validate((p, seed) in tiny_graphs()) {
        let g = p.generate(seed);
        let out = max_thr(&g, g.max_delay(), &CoreOptions::fast()).unwrap();
        prop_assert!(out.config.validate(&g).is_ok());
        let out2 = min_cyc(&g, 1.6, &CoreOptions::fast()).unwrap();
        prop_assert!(out2.config.validate(&g).is_ok());
    }
}
