//! Finite variable bounds for the MILP formulations.
//!
//! The paper leaves variable ranges to CPLEX; our branch & bound prefers
//! explicit finite bounds for the integer variables. The bounds below are
//! conservative (they provably contain an optimal solution) but not
//! tight; see the inline arguments.

use rr_rrg::Rrg;

/// Bounds derived from one RRG.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VarBounds {
    /// Upper bound on any `R'(e)` (buffer count per edge).
    pub max_buffers: i64,
    /// Symmetric bound on retiming values `|r(n)|`.
    pub max_retiming: i64,
    /// Upper bound on `x = 1/Θ`.
    pub max_x: f64,
    /// Big-M for the path constraints (`τ*`, the total delay).
    pub tau_star: f64,
}

/// Computes bounds for `g`.
///
/// * `max_buffers`: throughput and cycle time depend on token *positions*
///   only through `R' ≥ R0'`; since Θ_lp is invariant under retiming of a
///   fixed `R'` (the σ-absorption argument), an optimal solution never
///   needs an edge to hold more than every positive token in the graph
///   plus one timing bubble.
/// * `max_retiming`: given feasible buffers, a witness retiming exists
///   whose Bellman–Ford potentials are bounded by
///   `|N| · (max_buffers + max|R0| + 1)`.
/// * `max_x`: Θ of any live configuration within the buffer bound is at
///   least one token per full revolution of the longest possible cycle.
pub fn bounds_of(g: &Rrg) -> VarBounds {
    let positive_tokens = g.total_positive_tokens();
    let max_buffers = positive_tokens + 2;
    let max_abs_tokens = g.edges().map(|(_, e)| e.tokens().abs()).max().unwrap_or(0);
    let n = g.num_nodes() as i64;
    let max_retiming = n * (max_buffers + max_abs_tokens + 1);
    let max_x = (g.num_edges() as f64) * (max_buffers as f64) + 2.0;
    VarBounds {
        max_buffers,
        max_retiming,
        max_x,
        tau_star: g.total_delay().max(g.max_delay()).max(1e-9),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rr_rrg::figures;

    #[test]
    fn figure_bounds_contain_known_optima() {
        let g = figures::figure_1a(0.9);
        let b = bounds_of(&g);
        // Figure 2's configuration uses at most 1 buffer per edge and
        // retimings within ±2 — well inside the bounds.
        assert!(b.max_buffers >= 4);
        assert!(b.max_retiming >= 2);
        assert!(b.tau_star >= 3.0);
        assert!(b.max_x >= 3.0);
    }

    #[test]
    fn bounds_scale_with_graph() {
        let small = bounds_of(&figures::figure_1a(0.5));
        let big = bounds_of(&rr_rrg::generate::random_rrg(30, 5, 80, 7));
        assert!(big.max_retiming > small.max_retiming);
    }
}
