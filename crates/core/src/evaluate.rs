//! Evaluation of a retiming/recycling configuration: exact cycle time,
//! LP throughput bound, simulated throughput, and the derived effective
//! cycle times — the columns of Table 1.

use rr_rrg::{cycle_time, Config, Rrg};
use rr_tgmg::{lp_bound, sim, TgmgSkeleton};

use crate::formulation::OptError;
use crate::CoreOptions;

/// All measured quantities of one configuration (one row of Table 1).
#[derive(Debug, Clone)]
pub struct RcEvaluation {
    /// The configuration itself.
    pub config: Config,
    /// Exact cycle time τ (longest combinational path).
    pub tau: f64,
    /// LP throughput upper bound Θ_lp.
    pub theta_lp: f64,
    /// Simulated throughput Θ.
    pub theta_sim: f64,
    /// ξ_lp = τ / Θ_lp.
    pub xi_lp: f64,
    /// ξ = τ / Θ.
    pub xi_sim: f64,
    /// Relative over-estimation of the bound: `(Θ_lp − Θ)/Θ · 100`.
    pub err_pct: f64,
    /// `false` when the configuration came from a budget-truncated MILP
    /// solve (node/time limit hit with an incumbent), so Table-1 rows
    /// can mark unproven points. Configurations that are not produced by
    /// a solver (e.g. the min-delay retiming anchor) count as proven.
    pub proven_optimal: bool,
}

/// Evaluates `config` on `g`.
///
/// # Errors
///
/// [`OptError::Evaluation`] when the configuration cannot be evaluated
/// (combinational cycle, simulator failure) and [`OptError::Solver`] when
/// the LP bound fails.
pub fn evaluate_config(
    g: &Rrg,
    config: &Config,
    opts: &CoreOptions,
) -> Result<RcEvaluation, OptError> {
    let tau = cycle_time::cycle_time_with(g, &config.buffers)
        .map_err(|e| OptError::Evaluation(e.to_string()))?;
    let skeleton = TgmgSkeleton::of(g);
    let tgmg = skeleton.instantiate(&config.tokens, &config.buffers);
    let theta_lp = lp_bound::throughput_upper_bound(&tgmg)
        .map_err(OptError::Solver)?
        .min(1.0);
    let theta_sim = sim::simulate(&tgmg, &opts.sim)
        .map_err(|e| OptError::Evaluation(e.to_string()))?
        .throughput
        .min(1.0);
    Ok(RcEvaluation {
        config: config.clone(),
        tau,
        theta_lp,
        theta_sim,
        xi_lp: tau / theta_lp,
        xi_sim: tau / theta_sim,
        err_pct: (theta_lp - theta_sim) / theta_sim * 100.0,
        proven_optimal: true,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rr_rrg::figures;

    #[test]
    fn figure_1a_evaluation() {
        let g = figures::figure_1a(0.5);
        let ev = evaluate_config(&g, &Config::initial(&g), &CoreOptions::default()).unwrap();
        assert_eq!(ev.tau, 3.0);
        assert!((ev.theta_lp - 1.0).abs() < 1e-6);
        assert!((ev.theta_sim - 1.0).abs() < 0.01);
        assert!((ev.xi_lp - 3.0).abs() < 1e-5);
        assert!(ev.err_pct.abs() < 2.0);
    }

    #[test]
    fn figure_2_evaluation_shows_lp_gap() {
        let g = figures::figure_2(0.5);
        let ev = evaluate_config(&g, &Config::initial(&g), &CoreOptions::default()).unwrap();
        assert_eq!(ev.tau, 1.0);
        // Exact Θ = 0.5; the LP bound is somewhere in [0.5, 1].
        assert!(ev.theta_sim <= ev.theta_lp + 0.02);
        assert!((ev.theta_sim - 0.5).abs() < 0.02);
        assert!(ev.err_pct >= -2.0);
    }
}
