//! Non-dominated configuration bookkeeping (Definition 4.1): `RC1`
//! dominates `RC2` when it is strictly faster in throughput and no slower
//! in cycle time.

use crate::evaluate::RcEvaluation;

/// `true` when `a` dominates `b` w.r.t. the LP throughput bound
/// (Definition 4.1: Θ(a) > Θ(b) and τ(a) ≤ τ(b)).
pub fn dominates_lp(a: &RcEvaluation, b: &RcEvaluation) -> bool {
    a.theta_lp > b.theta_lp + 1e-9 && a.tau <= b.tau + 1e-9
}

/// Indices of the evaluations not dominated by any other (w.r.t. Θ_lp).
pub fn non_dominated_indices(evals: &[RcEvaluation]) -> Vec<usize> {
    (0..evals.len())
        .filter(|&i| !evals.iter().any(|other| dominates_lp(other, &evals[i])))
        .collect()
}

/// Retains only the non-dominated evaluations, preserving order.
pub fn prune_dominated(evals: Vec<RcEvaluation>) -> Vec<RcEvaluation> {
    let keep = non_dominated_indices(&evals);
    let mut keep_iter = keep.into_iter().peekable();
    evals
        .into_iter()
        .enumerate()
        .filter_map(|(i, e)| {
            if keep_iter.peek() == Some(&i) {
                keep_iter.next();
                Some(e)
            } else {
                None
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rr_rrg::Config;

    fn eval(tau: f64, theta_lp: f64) -> RcEvaluation {
        RcEvaluation {
            config: Config {
                tokens: vec![],
                buffers: vec![],
            },
            tau,
            theta_lp,
            theta_sim: theta_lp,
            xi_lp: tau / theta_lp,
            xi_sim: tau / theta_lp,
            err_pct: 0.0,
            proven_optimal: true,
        }
    }

    #[test]
    fn domination_is_strict_in_throughput() {
        let fast = eval(2.0, 0.8);
        let slow = eval(2.0, 0.5);
        assert!(dominates_lp(&fast, &slow));
        assert!(!dominates_lp(&slow, &fast));
        // Equal throughput never dominates.
        assert!(!dominates_lp(&fast, &eval(3.0, 0.8)));
    }

    #[test]
    fn pruning_keeps_the_frontier() {
        let evals = vec![
            eval(1.0, 0.3),  // frontier (fastest clock)
            eval(2.0, 0.25), // dominated by both neighbours
            eval(2.5, 0.9),  // frontier
            eval(3.0, 1.0),  // frontier
        ];
        let pruned = prune_dominated(evals);
        let taus: Vec<f64> = pruned.iter().map(|e| e.tau).collect();
        assert_eq!(taus, vec![1.0, 2.5, 3.0]);
    }

    #[test]
    fn identical_points_survive() {
        let evals = vec![eval(1.0, 0.5), eval(1.0, 0.5)];
        assert_eq!(prune_dominated(evals).len(), 2);
    }
}
