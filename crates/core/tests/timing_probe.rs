use rr_core::{report, CoreOptions};
use rr_rrg::iscas::IscasProfile;
use std::time::Instant;

#[test]
#[ignore]
fn probe() {
    for name in ["s208", "s27", "s382", "s400", "s526"] {
        let p = IscasProfile::by_name(name).unwrap();
        let g = p.generate(1);
        let t0 = Instant::now();
        let mut opts = CoreOptions::default();
        opts.solver.time_limit = Some(std::time::Duration::from_secs(20));
        match report::evaluate_benchmark(name, &g, &opts) {
            Ok((row, t1)) => {
                println!(
                "{name}: {:?} | rows={} xi*={:.1} nee={:.1} lp={:.1} sim={:.1} I%={:.1} proven={}",
                t0.elapsed(), t1.outcome.evaluations.len(), row.xi_star, row.xi_nee,
                row.xi_lp_min, row.xi_sim_min, row.improvement_pct, row.proven_optimal
            )
            }
            Err(e) => println!("{name}: ERROR {e} after {:?}", t0.elapsed()),
        }
    }
}
