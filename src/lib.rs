//! # Retiming and recycling for elastic systems with early evaluation
//!
//! A full reproduction of Bufistov, Cortadella, Galceran-Oms, Júlvez and
//! Kishinevsky, *"Retiming and recycling for elastic systems with early
//! evaluation"*, DAC 2009 — as a Rust workspace. This facade crate
//! re-exports every subsystem under one roof and hosts the runnable
//! examples and cross-crate integration tests.
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`rrg`] | `rr-rrg` | Retiming & Recycling Graphs, configurations, generators, the paper's figures |
//! | [`milp`] | `rr-milp` | from-scratch LP/MILP solver (two-phase simplex + branch & bound) |
//! | [`tgmg`] | `rr-tgmg` | timed guarded marked graphs, Procedures 1–2, LP throughput bound, simulator |
//! | [`elastic`] | `rr-elastic` | cycle-accurate elastic machine with anti-token counterflow |
//! | [`markov`] | `rr-markov` | exact throughput via Markov chains |
//! | [`retime`] | `rr-retime` | Leiserson–Saxe min-period retiming baseline |
//! | [`core`] | `rr-core` | `MIN_CYC` / `MAX_THR` MILPs and the `MIN_EFF_CYC` sweep |
//!
//! # Quickstart
//!
//! ```
//! use retiming_recycling::prelude::*;
//!
//! // The paper's motivating example: a mux loop with cycle time 3.
//! let rrg = rr_rrg::figures::figure_1a(0.9);
//!
//! // Optimize: trade cycle time against throughput using early evaluation.
//! let out = rr_core::min_eff_cyc(&rrg, &rr_core::CoreOptions::fast())?;
//! let best = out.best_simulated().expect("sweep found configurations");
//!
//! // The optimizer rediscovers Figure 2: ξ = (3 − 2α) ≈ 1.2 at α = 0.9,
//! // down from 3.0 for plain retiming.
//! assert!(best.xi_sim < 1.4);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub use rr_core as core;
pub use rr_elastic as elastic;
pub use rr_markov as markov;
pub use rr_milp as milp;
pub use rr_retime as retime;
pub use rr_rrg as rrg;
pub use rr_tgmg as tgmg;

/// Convenient glob import for examples and downstream experimentation.
pub mod prelude {
    pub use rr_core;
    pub use rr_elastic;
    pub use rr_markov;
    pub use rr_milp;
    pub use rr_retime;
    pub use rr_rrg;
    pub use rr_tgmg;
}
