//! Offline stand-in for the `proptest` crate.
//!
//! The build container cannot reach crates.io, so this vendored crate
//! implements the subset of proptest the workspace's property tests use:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! * [`strategy::Strategy`] with `prop_map` / `prop_flat_map`,
//! * range strategies, tuple strategies (arity ≤ 8),
//!   [`collection::vec`], [`sample::Index`], and [`any`],
//! * [`prop_assert!`] / [`prop_assert_eq!`].
//!
//! Differences from upstream: cases are drawn from a deterministic
//! per-test RNG (seeded by the test name) and failing inputs are **not
//! shrunk** — instead, a failing case prints its test name and case
//! index to stderr, and since the stream is deterministic, re-running
//! the test regenerates exactly the same inputs for that index.

pub mod test_runner {
    /// Runner configuration (only the case count is honoured).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Prints the failing case index while a property panic unwinds, so
    /// the (deterministic) inputs can be regenerated.
    pub struct CaseGuard {
        test: &'static str,
        case: u32,
    }

    impl CaseGuard {
        /// Arms the guard for one case.
        pub fn new(test: &'static str, case: u32) -> Self {
            CaseGuard { test, case }
        }
    }

    impl Drop for CaseGuard {
        fn drop(&mut self) {
            if std::thread::panicking() {
                eprintln!(
                    "proptest: {} failed at case index {} (deterministic stream — \
                     re-run regenerates the same inputs)",
                    self.test, self.case
                );
            }
        }
    }

    /// Deterministic per-test RNG (xoshiro via the vendored `rand`).
    #[derive(Debug, Clone)]
    pub struct TestRng(pub rand::rngs::StdRng);

    impl TestRng {
        /// Seeds the stream from the test name (FNV-1a).
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            use rand::SeedableRng;
            TestRng(rand::rngs::StdRng::seed_from_u64(h))
        }

        /// Next raw 64 bits.
        pub fn next_u64(&mut self) -> u64 {
            use rand::RngExt;
            self.0.next_u64()
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f` builds
        /// out of it.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;
        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Marker for types with a canonical strategy ([`crate::any`]).
    pub trait Arbitrary {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> u64 {
            rng.next_u64()
        }
    }

    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut TestRng) -> u32 {
            rng.next_u64() as u32
        }
    }

    /// The [`crate::any`] strategy of an [`Arbitrary`] type.
    pub struct Any<T>(pub(crate) std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    use rand::RngExt;
                    rng.0.random_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    use rand::RngExt;
                    rng.0.random_range(self.clone())
                }
            }
        )*};
    }
    range_strategies!(usize, u64, u32, i64, i32);

    // Floats only support half-open ranges (mirroring the vendored rand).
    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            use rand::RngExt;
            rng.0.random_range(self.clone())
        }
    }

    macro_rules! tuple_strategies {
        ($(($($n:tt $s:ident),+),)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategies!(
        (0 A),
        (0 A, 1 B),
        (0 A, 1 B, 2 C),
        (0 A, 1 B, 2 C, 3 D),
        (0 A, 1 B, 2 C, 3 D, 4 E),
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F),
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G),
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H),
    );
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for fixed-length vectors of `element` draws.
    pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            (0..self.len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    use crate::strategy::Arbitrary;
    use crate::test_runner::TestRng;

    /// An index into a collection whose length is only known at use time.
    #[derive(Debug, Clone, Copy)]
    pub struct Index(u64);

    impl Index {
        /// Resolves against a concrete length.
        ///
        /// # Panics
        ///
        /// Panics when `len == 0`.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Index {
            Index(rng.next_u64())
        }
    }
}

/// The canonical strategy of an [`strategy::Arbitrary`] type.
pub fn any<T: strategy::Arbitrary>() -> strategy::Any<T> {
    strategy::Any(std::marker::PhantomData)
}

pub mod prelude {
    /// Upstream-compatible alias so `prop::sample::Index` etc. resolve.
    pub use crate as prop;
    pub use crate::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Asserts a property-test condition, panicking with the formatted
/// message (no shrinking; the case stream is deterministic).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// `assert_eq!` inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(, $($fmt:tt)*)?) => { assert_eq!($a, $b $(, $($fmt)*)?) };
}

/// Defines property tests: each `fn name(pat in strategy, ..) { body }`
/// becomes a `#[test]` running `config.cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                #[allow(unused_imports)]
                use $crate::strategy::Strategy as _;
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                let strat = ( $($strat,)+ );
                for _case in 0..config.cases {
                    let _guard = $crate::test_runner::CaseGuard::new(
                        concat!(module_path!(), "::", stringify!($name)),
                        _case,
                    );
                    let ( $($pat,)+ ) = strat.generate(&mut rng);
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (usize, i64)> {
        (1usize..10, -3i64..=3).prop_map(|(a, b)| (a * 2, b))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_maps((a, b) in pair(), flag in any::<bool>()) {
            prop_assert!(a % 2 == 0 && (2..20).contains(&a));
            prop_assert!((-3..=3).contains(&b));
            let _ = flag;
        }

        #[test]
        fn vec_and_index(
            v in prop::collection::vec(0i32..=40, 16),
            ix in any::<prop::sample::Index>(),
        ) {
            prop_assert_eq!(v.len(), 16);
            prop_assert!(ix.index(v.len()) < v.len());
        }

        #[test]
        fn flat_map_composes(v in (2usize..6).prop_flat_map(|n| prop::collection::vec(0u32..5, n))) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
        }
    }
}
