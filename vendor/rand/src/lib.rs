//! Offline stand-in for the `rand` crate.
//!
//! The build container has no network access to crates.io, so this tiny
//! vendored crate provides the exact API surface the workspace uses:
//!
//! * [`rngs::StdRng`] — a deterministic xoshiro256** generator,
//! * [`SeedableRng::seed_from_u64`],
//! * [`RngExt::random_range`] over integer and float ranges,
//! * [`seq::SliceRandom::shuffle`] (Fisher–Yates).
//!
//! Streams are fully deterministic for a given seed (the workspace's
//! benchmark generators and simulators rely on seed-reproducibility, not
//! on matching upstream `rand`'s exact streams).

/// Construction of seeded generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (SplitMix64 key expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range sampling, mirroring `rand 0.9`'s `Rng::random_range`.
pub trait RngExt {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform draw from a range (see [`SampleRange`]).
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        SampleRange::sample(range, self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of [0, 1]");
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from `self` using `rng`.
    fn sample<G: RngExt + ?Sized>(self, rng: &mut G) -> T;
}

macro_rules! int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<G: RngExt + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Multiply-shift bounded draw; bias is < 2^-64, irrelevant
                // for benchmark generation.
                let r = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + r) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<G: RngExt + ?Sized>(self, rng: &mut G) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "cannot sample empty range");
                let span = (e as i128 - s as i128 + 1) as u128;
                let r = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (s as i128 + r) as $t
            }
        }
    )*};
}
int_ranges!(usize, u64, u32, i64, i32);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample<G: RngExt + ?Sized>(self, rng: &mut G) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        // 53-bit mantissa draw in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

pub mod rngs {
    use super::{RngExt, SeedableRng};

    /// Deterministic xoshiro256** generator (Blackman & Vigna).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 key expansion, as recommended by the xoshiro
            // authors for seeding from a single word.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngExt for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::RngExt;

    /// In-place slice shuffling.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle.
        fn shuffle<G: RngExt + ?Sized>(&mut self, rng: &mut G);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<G: RngExt + ?Sized>(&mut self, rng: &mut G) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let i = r.random_range(3..10usize);
            assert!((3..10).contains(&i));
            let j = r.random_range(-3i64..=3);
            assert!((-3..=3).contains(&j));
            let f = r.random_range(0.25..2.0f64);
            assert!((0.25..2.0).contains(&f));
        }
    }

    #[test]
    fn float_unit_range_covers_both_halves() {
        let mut r = StdRng::seed_from_u64(1);
        let draws: Vec<f64> = (0..256).map(|_| r.random_range(0.0..1.0)).collect();
        assert!(draws.iter().any(|&x| x < 0.5) && draws.iter().any(|&x| x > 0.5));
        assert!(draws.iter().all(|&x| (0.0..1.0).contains(&x)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut StdRng::seed_from_u64(9));
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..50).collect::<Vec<_>>(),
            "shuffle left input unchanged"
        );
    }
}
