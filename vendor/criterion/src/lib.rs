//! Offline stand-in for the `criterion` crate.
//!
//! The build container cannot reach crates.io, so this vendored crate
//! provides a small wall-clock benchmarking harness with criterion's
//! macro and builder surface: [`criterion_group!`], [`criterion_main!`],
//! [`Criterion::benchmark_group`], [`BenchmarkId`], [`Throughput`] and
//! [`Bencher::iter`].
//!
//! Statistics are deliberately simple — mean / min / max over up to
//! `sample_size` timed iterations, with a wall-clock budget per benchmark
//! so expensive MILP solves don't stall `cargo bench` — but the printed
//! numbers are real measurements, good enough to track the perf
//! trajectory in `BENCH_*.json` files across PRs.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness state.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    /// Wall-clock budget per benchmark (not per iteration).
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            budget: Duration::from_secs(3),
        }
    }
}

impl Criterion {
    /// Sets the target number of timed iterations per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            budget: self.budget,
            throughput: None,
            _parent: self,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        let report = run_bench(self.sample_size, self.budget, |b| f(b));
        report.print("", &id.to_string(), None);
    }
}

/// Units processed per iteration, for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements (e.g. simulated cycles) per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// A group of related benchmarks sharing settings.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    budget: Duration,
    throughput: Option<Throughput>,
    _parent: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the iteration target for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmarks `f` against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let report = run_bench(self.sample_size, self.budget, |b| f(b, input));
        report.print(&self.name, &id.to_string(), self.throughput);
        self
    }

    /// Benchmarks a closure with no external input.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        let report = run_bench(self.sample_size, self.budget, |b| f(b));
        report.print(&self.name, &id.to_string(), self.throughput);
        self
    }

    /// Ends the group (separator line, mirrors criterion's API).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; call [`Bencher::iter`].
pub struct Bencher {
    iters: Vec<Duration>,
    sample_size: usize,
    budget: Duration,
}

impl Bencher {
    /// Times `routine` repeatedly (one warm-up, then up to the configured
    /// sample count or until the wall-clock budget is spent).
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        black_box(routine()); // warm-up, untimed
        let start = Instant::now();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(routine());
            self.iters.push(t0.elapsed());
            if start.elapsed() > self.budget {
                break;
            }
        }
    }
}

struct Report {
    samples: Vec<Duration>,
}

impl Report {
    fn print(&self, group: &str, id: &str, throughput: Option<Throughput>) {
        let name = if group.is_empty() {
            id.to_string()
        } else {
            format!("{group}/{id}")
        };
        if self.samples.is_empty() {
            println!("bench {name:<40} (no samples)");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = *self.samples.iter().min().unwrap();
        let max = *self.samples.iter().max().unwrap();
        let rate = match throughput {
            Some(Throughput::Elements(n)) if mean.as_secs_f64() > 0.0 => {
                format!("  {:>12.0} elem/s", n as f64 / mean.as_secs_f64())
            }
            Some(Throughput::Bytes(n)) if mean.as_secs_f64() > 0.0 => {
                format!("  {:>12.0} B/s", n as f64 / mean.as_secs_f64())
            }
            _ => String::new(),
        };
        println!(
            "bench {name:<40} mean {mean:>12?}  min {min:>12?}  max {max:>12?}  ({} samples){rate}",
            self.samples.len()
        );
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(sample_size: usize, budget: Duration, mut f: F) -> Report {
    let mut b = Bencher {
        iters: Vec::new(),
        sample_size,
        budget,
    };
    f(&mut b);
    Report { samples: b.iters }
}

/// Declares a benchmark group runner function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $cfg;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(name = $name; config = $crate::Criterion::default(); targets = $($target),+);
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let report = run_bench(5, Duration::from_secs(1), |b| b.iter(|| 1 + 1));
        assert!(!report.samples.is_empty() && report.samples.len() <= 5);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default().sample_size(3);
        let mut g = c.benchmark_group("g");
        g.sample_size(2).throughput(Throughput::Elements(10));
        g.bench_with_input(BenchmarkId::new("f", 1), &7u64, |b, &x| b.iter(|| x * 2));
        g.bench_function("plain", |b| b.iter(|| 3));
        g.finish();
        c.bench_function("top", |b| b.iter(|| 4));
    }
}
